//go:build !purego

#include "textflag.h"

// AVX2 bodies for the float64 multiply-add kernels. Rounding contract: each
// lane sees exactly the scalar sequence of one multiply rounding per weighted
// row and one add rounding per fold, in row order — VMULPD/VADDPD are
// lane-wise IEEE ops, so the vector forms are bit-identical to the scalar
// loops. Operand order is chosen so x86 NaN selection matches the compiled Go
// bodies: multiplies take the weight as the first source, adds take the
// accumulated value as the first source. No FMA anywhere — fusing would drop
// the intermediate rounding and change results.
//
// Each TEXT body runs an 8-wide main loop on two independent accumulator
// chains (hides VADDPD latency), then one 4-wide block, then a scalar tail.

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func f64MulAddAVX2(dst, row *float64, n int, w float64)
TEXT ·f64MulAddAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ row+8(FP), SI
	MOVQ n+16(FP), R9
	VBROADCASTSD w+24(FP), Y12
	XORQ AX, AX
	MOVQ R9, BX
	ANDQ $-8, BX
	CMPQ AX, BX
	JGE  ma1_4wide

ma1_loop8:
	VMOVUPD (DI)(AX*8), Y0
	VMOVUPD 32(DI)(AX*8), Y5
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y6
	VMULPD  Y1, Y12, Y1
	VMULPD  Y6, Y12, Y6
	VADDPD  Y1, Y0, Y0
	VADDPD  Y6, Y5, Y5
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ    $8, AX
	CMPQ    AX, BX
	JLT     ma1_loop8

ma1_4wide:
	MOVQ R9, BX
	ANDQ $-4, BX
	CMPQ AX, BX
	JGE  ma1_tail
	VMOVUPD (DI)(AX*8), Y0
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y1, Y12, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ    $4, AX

ma1_tail:
	CMPQ AX, R9
	JGE  ma1_done

ma1_tail_loop:
	VMOVSD (DI)(AX*8), X0
	VMOVSD (SI)(AX*8), X1
	VMULSD X1, X12, X1
	VADDSD X1, X0, X0
	VMOVSD X0, (DI)(AX*8)
	INCQ   AX
	CMPQ   AX, R9
	JLT    ma1_tail_loop

ma1_done:
	VZEROUPPER
	RET

// func f64MulAdd2AVX2(dst, r1, r2 *float64, n int, w1, w2 float64)
TEXT ·f64MulAdd2AVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ r1+8(FP), SI
	MOVQ r2+16(FP), DX
	MOVQ n+24(FP), R9
	VBROADCASTSD w1+32(FP), Y12
	VBROADCASTSD w2+40(FP), Y13
	XORQ AX, AX
	MOVQ R9, BX
	ANDQ $-8, BX
	CMPQ AX, BX
	JGE  ma2_4wide

ma2_loop8:
	VMOVUPD (DI)(AX*8), Y0
	VMOVUPD 32(DI)(AX*8), Y5
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y6
	VMULPD  Y1, Y12, Y1
	VMULPD  Y6, Y12, Y6
	VADDPD  Y1, Y0, Y0
	VADDPD  Y6, Y5, Y5
	VMOVUPD (DX)(AX*8), Y2
	VMOVUPD 32(DX)(AX*8), Y7
	VMULPD  Y2, Y13, Y2
	VMULPD  Y7, Y13, Y7
	VADDPD  Y2, Y0, Y0
	VADDPD  Y7, Y5, Y5
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ    $8, AX
	CMPQ    AX, BX
	JLT     ma2_loop8

ma2_4wide:
	MOVQ R9, BX
	ANDQ $-4, BX
	CMPQ AX, BX
	JGE  ma2_tail
	VMOVUPD (DI)(AX*8), Y0
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y1, Y12, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (DX)(AX*8), Y2
	VMULPD  Y2, Y13, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ    $4, AX

ma2_tail:
	CMPQ AX, R9
	JGE  ma2_done

ma2_tail_loop:
	VMOVSD (DI)(AX*8), X0
	VMOVSD (SI)(AX*8), X1
	VMULSD X1, X12, X1
	VADDSD X1, X0, X0
	VMOVSD (DX)(AX*8), X2
	VMULSD X2, X13, X2
	VADDSD X2, X0, X0
	VMOVSD X0, (DI)(AX*8)
	INCQ   AX
	CMPQ   AX, R9
	JLT    ma2_tail_loop

ma2_done:
	VZEROUPPER
	RET

// func f64MulAdd4AVX2(dst, r1, r2, r3, r4 *float64, n int, w1, w2, w3, w4 float64)
TEXT ·f64MulAdd4AVX2(SB), NOSPLIT, $0-80
	MOVQ dst+0(FP), DI
	MOVQ r1+8(FP), SI
	MOVQ r2+16(FP), DX
	MOVQ r3+24(FP), CX
	MOVQ r4+32(FP), R8
	MOVQ n+40(FP), R9
	VBROADCASTSD w1+48(FP), Y12
	VBROADCASTSD w2+56(FP), Y13
	VBROADCASTSD w3+64(FP), Y14
	VBROADCASTSD w4+72(FP), Y15
	XORQ AX, AX
	MOVQ R9, BX
	ANDQ $-8, BX
	CMPQ AX, BX
	JGE  ma4_4wide

ma4_loop8:
	VMOVUPD (DI)(AX*8), Y0
	VMOVUPD 32(DI)(AX*8), Y5
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y6
	VMULPD  Y1, Y12, Y1
	VMULPD  Y6, Y12, Y6
	VADDPD  Y1, Y0, Y0
	VADDPD  Y6, Y5, Y5
	VMOVUPD (DX)(AX*8), Y2
	VMOVUPD 32(DX)(AX*8), Y7
	VMULPD  Y2, Y13, Y2
	VMULPD  Y7, Y13, Y7
	VADDPD  Y2, Y0, Y0
	VADDPD  Y7, Y5, Y5
	VMOVUPD (CX)(AX*8), Y3
	VMOVUPD 32(CX)(AX*8), Y8
	VMULPD  Y3, Y14, Y3
	VMULPD  Y8, Y14, Y8
	VADDPD  Y3, Y0, Y0
	VADDPD  Y8, Y5, Y5
	VMOVUPD (R8)(AX*8), Y4
	VMOVUPD 32(R8)(AX*8), Y9
	VMULPD  Y4, Y15, Y4
	VMULPD  Y9, Y15, Y9
	VADDPD  Y4, Y0, Y0
	VADDPD  Y9, Y5, Y5
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ    $8, AX
	CMPQ    AX, BX
	JLT     ma4_loop8

ma4_4wide:
	MOVQ R9, BX
	ANDQ $-4, BX
	CMPQ AX, BX
	JGE  ma4_tail
	VMOVUPD (DI)(AX*8), Y0
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y1, Y12, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (DX)(AX*8), Y2
	VMULPD  Y2, Y13, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD (CX)(AX*8), Y3
	VMULPD  Y3, Y14, Y3
	VADDPD  Y3, Y0, Y0
	VMOVUPD (R8)(AX*8), Y4
	VMULPD  Y4, Y15, Y4
	VADDPD  Y4, Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ    $4, AX

ma4_tail:
	CMPQ AX, R9
	JGE  ma4_done

ma4_tail_loop:
	VMOVSD (DI)(AX*8), X0
	VMOVSD (SI)(AX*8), X1
	VMULSD X1, X12, X1
	VADDSD X1, X0, X0
	VMOVSD (DX)(AX*8), X2
	VMULSD X2, X13, X2
	VADDSD X2, X0, X0
	VMOVSD (CX)(AX*8), X3
	VMULSD X3, X14, X3
	VADDSD X3, X0, X0
	VMOVSD (R8)(AX*8), X4
	VMULSD X4, X15, X4
	VADDSD X4, X0, X0
	VMOVSD X0, (DI)(AX*8)
	INCQ   AX
	CMPQ   AX, R9
	JLT    ma4_tail_loop

ma4_done:
	VZEROUPPER
	RET

// func f64MulAddSetAVX2(dst, row *float64, n int, w float64)
TEXT ·f64MulAddSetAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ row+8(FP), SI
	MOVQ n+16(FP), R9
	VBROADCASTSD w+24(FP), Y12
	XORQ AX, AX
	MOVQ R9, BX
	ANDQ $-8, BX
	CMPQ AX, BX
	JGE  ms1_4wide

ms1_loop8:
	VMOVUPD (SI)(AX*8), Y0
	VMOVUPD 32(SI)(AX*8), Y5
	VMULPD  Y0, Y12, Y0
	VMULPD  Y5, Y12, Y5
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ    $8, AX
	CMPQ    AX, BX
	JLT     ms1_loop8

ms1_4wide:
	MOVQ R9, BX
	ANDQ $-4, BX
	CMPQ AX, BX
	JGE  ms1_tail
	VMOVUPD (SI)(AX*8), Y0
	VMULPD  Y0, Y12, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ    $4, AX

ms1_tail:
	CMPQ AX, R9
	JGE  ms1_done

ms1_tail_loop:
	VMOVSD (SI)(AX*8), X0
	VMULSD X0, X12, X0
	VMOVSD X0, (DI)(AX*8)
	INCQ   AX
	CMPQ   AX, R9
	JLT    ms1_tail_loop

ms1_done:
	VZEROUPPER
	RET

// func f64MulAdd2SetAVX2(dst, r1, r2 *float64, n int, w1, w2 float64)
TEXT ·f64MulAdd2SetAVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ r1+8(FP), SI
	MOVQ r2+16(FP), DX
	MOVQ n+24(FP), R9
	VBROADCASTSD w1+32(FP), Y12
	VBROADCASTSD w2+40(FP), Y13
	XORQ AX, AX
	MOVQ R9, BX
	ANDQ $-8, BX
	CMPQ AX, BX
	JGE  ms2_4wide

ms2_loop8:
	VMOVUPD (SI)(AX*8), Y0
	VMOVUPD 32(SI)(AX*8), Y5
	VMULPD  Y0, Y12, Y0
	VMULPD  Y5, Y12, Y5
	VMOVUPD (DX)(AX*8), Y2
	VMOVUPD 32(DX)(AX*8), Y7
	VMULPD  Y2, Y13, Y2
	VMULPD  Y7, Y13, Y7
	VADDPD  Y2, Y0, Y0
	VADDPD  Y7, Y5, Y5
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ    $8, AX
	CMPQ    AX, BX
	JLT     ms2_loop8

ms2_4wide:
	MOVQ R9, BX
	ANDQ $-4, BX
	CMPQ AX, BX
	JGE  ms2_tail
	VMOVUPD (SI)(AX*8), Y0
	VMULPD  Y0, Y12, Y0
	VMOVUPD (DX)(AX*8), Y2
	VMULPD  Y2, Y13, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ    $4, AX

ms2_tail:
	CMPQ AX, R9
	JGE  ms2_done

ms2_tail_loop:
	VMOVSD (SI)(AX*8), X0
	VMULSD X0, X12, X0
	VMOVSD (DX)(AX*8), X2
	VMULSD X2, X13, X2
	VADDSD X2, X0, X0
	VMOVSD X0, (DI)(AX*8)
	INCQ   AX
	CMPQ   AX, R9
	JLT    ms2_tail_loop

ms2_done:
	VZEROUPPER
	RET

// func f64MulAdd4SetAVX2(dst, r1, r2, r3, r4 *float64, n int, w1, w2, w3, w4 float64)
TEXT ·f64MulAdd4SetAVX2(SB), NOSPLIT, $0-80
	MOVQ dst+0(FP), DI
	MOVQ r1+8(FP), SI
	MOVQ r2+16(FP), DX
	MOVQ r3+24(FP), CX
	MOVQ r4+32(FP), R8
	MOVQ n+40(FP), R9
	VBROADCASTSD w1+48(FP), Y12
	VBROADCASTSD w2+56(FP), Y13
	VBROADCASTSD w3+64(FP), Y14
	VBROADCASTSD w4+72(FP), Y15
	XORQ AX, AX
	MOVQ R9, BX
	ANDQ $-8, BX
	CMPQ AX, BX
	JGE  ms4_4wide

ms4_loop8:
	VMOVUPD (SI)(AX*8), Y0
	VMOVUPD 32(SI)(AX*8), Y5
	VMULPD  Y0, Y12, Y0
	VMULPD  Y5, Y12, Y5
	VMOVUPD (DX)(AX*8), Y2
	VMOVUPD 32(DX)(AX*8), Y7
	VMULPD  Y2, Y13, Y2
	VMULPD  Y7, Y13, Y7
	VADDPD  Y2, Y0, Y0
	VADDPD  Y7, Y5, Y5
	VMOVUPD (CX)(AX*8), Y3
	VMOVUPD 32(CX)(AX*8), Y8
	VMULPD  Y3, Y14, Y3
	VMULPD  Y8, Y14, Y8
	VADDPD  Y3, Y0, Y0
	VADDPD  Y8, Y5, Y5
	VMOVUPD (R8)(AX*8), Y4
	VMOVUPD 32(R8)(AX*8), Y9
	VMULPD  Y4, Y15, Y4
	VMULPD  Y9, Y15, Y9
	VADDPD  Y4, Y0, Y0
	VADDPD  Y9, Y5, Y5
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ    $8, AX
	CMPQ    AX, BX
	JLT     ms4_loop8

ms4_4wide:
	MOVQ R9, BX
	ANDQ $-4, BX
	CMPQ AX, BX
	JGE  ms4_tail
	VMOVUPD (SI)(AX*8), Y0
	VMULPD  Y0, Y12, Y0
	VMOVUPD (DX)(AX*8), Y2
	VMULPD  Y2, Y13, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD (CX)(AX*8), Y3
	VMULPD  Y3, Y14, Y3
	VADDPD  Y3, Y0, Y0
	VMOVUPD (R8)(AX*8), Y4
	VMULPD  Y4, Y15, Y4
	VADDPD  Y4, Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ    $4, AX

ms4_tail:
	CMPQ AX, R9
	JGE  ms4_done

ms4_tail_loop:
	VMOVSD (SI)(AX*8), X0
	VMULSD X0, X12, X0
	VMOVSD (DX)(AX*8), X2
	VMULSD X2, X13, X2
	VADDSD X2, X0, X0
	VMOVSD (CX)(AX*8), X3
	VMULSD X3, X14, X3
	VADDSD X3, X0, X0
	VMOVSD (R8)(AX*8), X4
	VMULSD X4, X15, X4
	VADDSD X4, X0, X0
	VMOVSD X0, (DI)(AX*8)
	INCQ   AX
	CMPQ   AX, R9
	JLT    ms4_tail_loop

ms4_done:
	VZEROUPPER
	RET
