//go:build !purego

package kernel

// Impl names the selected kernel implementation: "unroll4", or "avx2" when
// runtime detection upgrades the float64 kernels to the assembly bodies.
var Impl = "unroll4"

// F64MulAdd folds one weighted row into the accumulator: for every lane j,
// dst[j] += w * row[j], with exactly one rounding for the multiply and one
// for the add. len(row) must be >= len(dst); lanes are independent, so the
// 4-wide unroll cannot reorder any lane's fold.
func F64MulAdd(dst, row []float64, w float64) {
	n := len(dst)
	row = row[:n]
	if useAVX2 && n >= 4 {
		f64MulAddAVX2(&dst[0], &row[0], n, w)
		return
	}
	j := 0
	for ; j+4 <= n; j += 4 {
		d0 := dst[j] + w*row[j]
		d1 := dst[j+1] + w*row[j+1]
		d2 := dst[j+2] + w*row[j+2]
		d3 := dst[j+3] + w*row[j+3]
		dst[j] = d0
		dst[j+1] = d1
		dst[j+2] = d2
		dst[j+3] = d3
	}
	for ; j < n; j++ {
		dst[j] += w * row[j]
	}
}

// F64MulAdd2 folds two weighted rows into the accumulator in one pass: for
// every lane j, dst[j] = (dst[j] + w1*r1[j]) + w2*r2[j], in exactly that
// association — identical to calling F64MulAdd(dst, r1, w1) then
// F64MulAdd(dst, r2, w2), but with half the accumulator traffic.
func F64MulAdd2(dst, r1, r2 []float64, w1, w2 float64) {
	n := len(dst)
	r1 = r1[:n]
	r2 = r2[:n]
	if useAVX2 && n >= 4 {
		f64MulAdd2AVX2(&dst[0], &r1[0], &r2[0], n, w1, w2)
		return
	}
	j := 0
	for ; j+4 <= n; j += 4 {
		d0 := (dst[j] + w1*r1[j]) + w2*r2[j]
		d1 := (dst[j+1] + w1*r1[j+1]) + w2*r2[j+1]
		d2 := (dst[j+2] + w1*r1[j+2]) + w2*r2[j+2]
		d3 := (dst[j+3] + w1*r1[j+3]) + w2*r2[j+3]
		dst[j] = d0
		dst[j+1] = d1
		dst[j+2] = d2
		dst[j+3] = d3
	}
	for ; j < n; j++ {
		dst[j] = (dst[j] + w1*r1[j]) + w2*r2[j]
	}
}

// F64MulAdd4 folds four weighted rows into the accumulator in one pass:
// dst[j] = ((((dst[j] + w1*r1[j]) + w2*r2[j]) + w3*r3[j]) + w4*r4[j]), in
// exactly that association — identical to two sequential F64MulAdd2 calls,
// but with a quarter of the accumulator traffic of single folds.
func F64MulAdd4(dst, r1, r2, r3, r4 []float64, w1, w2, w3, w4 float64) {
	n := len(dst)
	r1 = r1[:n]
	r2 = r2[:n]
	r3 = r3[:n]
	r4 = r4[:n]
	if useAVX2 && n >= 4 {
		f64MulAdd4AVX2(&dst[0], &r1[0], &r2[0], &r3[0], &r4[0], n, w1, w2, w3, w4)
		return
	}
	j := 0
	for ; j+4 <= n; j += 4 {
		d0 := (((dst[j] + w1*r1[j]) + w2*r2[j]) + w3*r3[j]) + w4*r4[j]
		d1 := (((dst[j+1] + w1*r1[j+1]) + w2*r2[j+1]) + w3*r3[j+1]) + w4*r4[j+1]
		d2 := (((dst[j+2] + w1*r1[j+2]) + w2*r2[j+2]) + w3*r3[j+2]) + w4*r4[j+2]
		d3 := (((dst[j+3] + w1*r1[j+3]) + w2*r2[j+3]) + w3*r3[j+3]) + w4*r4[j+3]
		dst[j] = d0
		dst[j+1] = d1
		dst[j+2] = d2
		dst[j+3] = d3
	}
	for ; j < n; j++ {
		dst[j] = (((dst[j] + w1*r1[j]) + w2*r2[j]) + w3*r3[j]) + w4*r4[j]
	}
}

// F64MulAdd4Set writes the first four weighted rows of an accumulation:
// dst[j] = ((w1*r1[j] + w2*r2[j]) + w3*r3[j]) + w4*r4[j], overwriting dst —
// identical to F64MulAdd2Set then F64MulAdd2, up to the sign of exact zeros
// (see F64MulAddSet).
func F64MulAdd4Set(dst, r1, r2, r3, r4 []float64, w1, w2, w3, w4 float64) {
	n := len(dst)
	r1 = r1[:n]
	r2 = r2[:n]
	r3 = r3[:n]
	r4 = r4[:n]
	if useAVX2 && n >= 4 {
		f64MulAdd4SetAVX2(&dst[0], &r1[0], &r2[0], &r3[0], &r4[0], n, w1, w2, w3, w4)
		return
	}
	j := 0
	for ; j+4 <= n; j += 4 {
		d0 := ((w1*r1[j] + w2*r2[j]) + w3*r3[j]) + w4*r4[j]
		d1 := ((w1*r1[j+1] + w2*r2[j+1]) + w3*r3[j+1]) + w4*r4[j+1]
		d2 := ((w1*r1[j+2] + w2*r2[j+2]) + w3*r3[j+2]) + w4*r4[j+2]
		d3 := ((w1*r1[j+3] + w2*r2[j+3]) + w3*r3[j+3]) + w4*r4[j+3]
		dst[j] = d0
		dst[j+1] = d1
		dst[j+2] = d2
		dst[j+3] = d3
	}
	for ; j < n; j++ {
		dst[j] = ((w1*r1[j] + w2*r2[j]) + w3*r3[j]) + w4*r4[j]
	}
}

// F32MulAdd4 is F64MulAdd4 in the float32 lane.
func F32MulAdd4(dst, r1, r2, r3, r4 []float32, w1, w2, w3, w4 float32) {
	n := len(dst)
	r1 = r1[:n]
	r2 = r2[:n]
	r3 = r3[:n]
	r4 = r4[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		d0 := (((dst[j] + w1*r1[j]) + w2*r2[j]) + w3*r3[j]) + w4*r4[j]
		d1 := (((dst[j+1] + w1*r1[j+1]) + w2*r2[j+1]) + w3*r3[j+1]) + w4*r4[j+1]
		d2 := (((dst[j+2] + w1*r1[j+2]) + w2*r2[j+2]) + w3*r3[j+2]) + w4*r4[j+2]
		d3 := (((dst[j+3] + w1*r1[j+3]) + w2*r2[j+3]) + w3*r3[j+3]) + w4*r4[j+3]
		dst[j] = d0
		dst[j+1] = d1
		dst[j+2] = d2
		dst[j+3] = d3
	}
	for ; j < n; j++ {
		dst[j] = (((dst[j] + w1*r1[j]) + w2*r2[j]) + w3*r3[j]) + w4*r4[j]
	}
}

// F32MulAdd4Set is F64MulAdd4Set in the float32 lane.
func F32MulAdd4Set(dst, r1, r2, r3, r4 []float32, w1, w2, w3, w4 float32) {
	n := len(dst)
	r1 = r1[:n]
	r2 = r2[:n]
	r3 = r3[:n]
	r4 = r4[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		d0 := ((w1*r1[j] + w2*r2[j]) + w3*r3[j]) + w4*r4[j]
		d1 := ((w1*r1[j+1] + w2*r2[j+1]) + w3*r3[j+1]) + w4*r4[j+1]
		d2 := ((w1*r1[j+2] + w2*r2[j+2]) + w3*r3[j+2]) + w4*r4[j+2]
		d3 := ((w1*r1[j+3] + w2*r2[j+3]) + w3*r3[j+3]) + w4*r4[j+3]
		dst[j] = d0
		dst[j+1] = d1
		dst[j+2] = d2
		dst[j+3] = d3
	}
	for ; j < n; j++ {
		dst[j] = ((w1*r1[j] + w2*r2[j]) + w3*r3[j]) + w4*r4[j]
	}
}

// F64MulAddSet writes the first weighted row of an accumulation: for every
// lane j, dst[j] = w * row[j], overwriting dst. Equal to F64MulAdd on a
// zeroed accumulator except for the sign of an exact-zero product (0 + x
// normalizes -0 to +0; the store keeps -0) — identical to sign-based
// consumers. Using it on the first fold makes clearing dst unnecessary.
func F64MulAddSet(dst, row []float64, w float64) {
	n := len(dst)
	row = row[:n]
	if useAVX2 && n >= 4 {
		f64MulAddSetAVX2(&dst[0], &row[0], n, w)
		return
	}
	j := 0
	for ; j+4 <= n; j += 4 {
		d0 := w * row[j]
		d1 := w * row[j+1]
		d2 := w * row[j+2]
		d3 := w * row[j+3]
		dst[j] = d0
		dst[j+1] = d1
		dst[j+2] = d2
		dst[j+3] = d3
	}
	for ; j < n; j++ {
		dst[j] = w * row[j]
	}
}

// F64MulAdd2Set writes the first two weighted rows of an accumulation:
// dst[j] = w1*r1[j] + w2*r2[j], overwriting dst. Equal to F64MulAdd2 on a
// zeroed accumulator up to the sign of exact zeros (see F64MulAddSet).
func F64MulAdd2Set(dst, r1, r2 []float64, w1, w2 float64) {
	n := len(dst)
	r1 = r1[:n]
	r2 = r2[:n]
	if useAVX2 && n >= 4 {
		f64MulAdd2SetAVX2(&dst[0], &r1[0], &r2[0], n, w1, w2)
		return
	}
	j := 0
	for ; j+4 <= n; j += 4 {
		d0 := w1*r1[j] + w2*r2[j]
		d1 := w1*r1[j+1] + w2*r2[j+1]
		d2 := w1*r1[j+2] + w2*r2[j+2]
		d3 := w1*r1[j+3] + w2*r2[j+3]
		dst[j] = d0
		dst[j+1] = d1
		dst[j+2] = d2
		dst[j+3] = d3
	}
	for ; j < n; j++ {
		dst[j] = w1*r1[j] + w2*r2[j]
	}
}

// F32MulAddSet is F64MulAddSet in the float32 lane.
func F32MulAddSet(dst, row []float32, w float32) {
	n := len(dst)
	row = row[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		d0 := w * row[j]
		d1 := w * row[j+1]
		d2 := w * row[j+2]
		d3 := w * row[j+3]
		dst[j] = d0
		dst[j+1] = d1
		dst[j+2] = d2
		dst[j+3] = d3
	}
	for ; j < n; j++ {
		dst[j] = w * row[j]
	}
}

// F32MulAdd2Set is F64MulAdd2Set in the float32 lane.
func F32MulAdd2Set(dst, r1, r2 []float32, w1, w2 float32) {
	n := len(dst)
	r1 = r1[:n]
	r2 = r2[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		d0 := w1*r1[j] + w2*r2[j]
		d1 := w1*r1[j+1] + w2*r2[j+1]
		d2 := w1*r1[j+2] + w2*r2[j+2]
		d3 := w1*r1[j+3] + w2*r2[j+3]
		dst[j] = d0
		dst[j+1] = d1
		dst[j+2] = d2
		dst[j+3] = d3
	}
	for ; j < n; j++ {
		dst[j] = w1*r1[j] + w2*r2[j]
	}
}

// F32MulAdd is F64MulAdd in the float32 lane: dst[j] += w * row[j] with
// float32 multiply and add roundings.
func F32MulAdd(dst, row []float32, w float32) {
	n := len(dst)
	row = row[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		d0 := dst[j] + w*row[j]
		d1 := dst[j+1] + w*row[j+1]
		d2 := dst[j+2] + w*row[j+2]
		d3 := dst[j+3] + w*row[j+3]
		dst[j] = d0
		dst[j+1] = d1
		dst[j+2] = d2
		dst[j+3] = d3
	}
	for ; j < n; j++ {
		dst[j] += w * row[j]
	}
}

// F32MulAdd2 is F64MulAdd2 in the float32 lane:
// dst[j] = (dst[j] + w1*r1[j]) + w2*r2[j] with float32 roundings.
func F32MulAdd2(dst, r1, r2 []float32, w1, w2 float32) {
	n := len(dst)
	r1 = r1[:n]
	r2 = r2[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		d0 := (dst[j] + w1*r1[j]) + w2*r2[j]
		d1 := (dst[j+1] + w1*r1[j+1]) + w2*r2[j+1]
		d2 := (dst[j+2] + w1*r1[j+2]) + w2*r2[j+2]
		d3 := (dst[j+3] + w1*r1[j+3]) + w2*r2[j+3]
		dst[j] = d0
		dst[j+1] = d1
		dst[j+2] = d2
		dst[j+3] = d3
	}
	for ; j < n; j++ {
		dst[j] = (dst[j] + w1*r1[j]) + w2*r2[j]
	}
}

// U64Min folds a row of ranks into the running minima: for every lane j,
// dst[j] = min(dst[j], row[j]). Order-independent, so unrolling is trivially
// safe.
func U64Min(dst, row []uint64) {
	n := len(dst)
	row = row[:n]
	j := 0
	for ; j+4 <= n; j += 4 {
		if row[j] < dst[j] {
			dst[j] = row[j]
		}
		if row[j+1] < dst[j+1] {
			dst[j+1] = row[j+1]
		}
		if row[j+2] < dst[j+2] {
			dst[j+2] = row[j+2]
		}
		if row[j+3] < dst[j+3] {
			dst[j+3] = row[j+3]
		}
	}
	for ; j < n; j++ {
		if row[j] < dst[j] {
			dst[j] = row[j]
		}
	}
}

// U64Min2 folds two rank rows into the running minima in one pass:
// dst[j] = min(dst[j], r1[j], r2[j]).
func U64Min2(dst, r1, r2 []uint64) {
	n := len(dst)
	r1 = r1[:n]
	r2 = r2[:n]
	for j := 0; j < n; j++ {
		m := dst[j]
		if r1[j] < m {
			m = r1[j]
		}
		if r2[j] < m {
			m = r2[j]
		}
		dst[j] = m
	}
}
