//go:build amd64 && !purego

package kernel

// GaussPrepSize reports whether GaussPrep handles rows of width k.
func GaussPrepSize(k int) bool { return useAVX2 && k > 0 && k%4 == 0 }

// GaussPrep runs the integer half of a batched gaussian row fill: for row r
// and lane f it computes h = Mix64(pres[f] ^ dims[r]*0xA0761D6478BD642F),
// stores hv[r*k+f] = h>>11 and the exact half-unit form
// mu = hv<<1 + 1 - b + (b&hv&1)<<1 (b = hv>>52) the table interpolation
// consumes. Bit-identical to the scalar chain — the body is pure integer
// arithmetic, four lanes wide (the 64-bit multiplies are decomposed into
// 32x32 VPMULUDQ products, exact mod 2^64). k = len(pres) must satisfy
// GaussPrepSize; hv and mu must hold len(dims)*k values.
func GaussPrep(hv, mu []uint64, pres []uint64, dims []uint32) {
	k := len(pres)
	n := len(dims) * k
	if n == 0 {
		return
	}
	_ = hv[n-1]
	_ = mu[n-1]
	gaussPrepAVX2(&hv[0], &mu[0], &pres[0], &dims[0], len(dims), k)
}

func gaussPrepAVX2(hv, mu, pres *uint64, dims *uint32, rows, k int)

// GaussInterp turns prepared mu values into table-interpolated gaussians:
// out[i] = tab[s][0] + float64(mu[i]&(1<<42-1))*(0x1p-42)*tab[s][1] with
// s = mu[i]>>42, evaluated with exactly the rounding sequence of the scalar
// code (the integer-to-float conversion and the power-of-two scale are exact,
// then one multiply and one add round). Lanes whose slot falls outside
// [tailSlots, len(tab)-tailSlots) are tail lanes: their out value is garbage
// (computed from a clamped slot) and the corresponding bit is set in tails —
// one byte per 4 lanes, bit o for lane 4*g+o — so the caller can overwrite
// them with the exact tail evaluation. len(mu) must be a multiple of 4,
// len(tab) a power of two, len(out) >= len(mu), len(tails) >= len(mu)/4.
func GaussInterp(out []float64, mu []uint64, tails []byte, tab [][2]float64, tailSlots int) {
	n := len(mu)
	if n == 0 {
		return
	}
	slots := len(tab)
	if n%4 != 0 || slots == 0 || slots&(slots-1) != 0 || tailSlots <= 0 || 2*tailSlots >= slots {
		panic("kernel: bad GaussInterp shape")
	}
	_ = out[n-1]
	_ = tails[n/4-1]
	gaussInterpAVX2(&out[0], &mu[0], &tails[0], &tab[0][0], n, int64(tailSlots), int64(slots-tailSlots-1), int64(slots-1))
}

func gaussInterpAVX2(out *float64, mu *uint64, tails *byte, tab *float64, n int, lo, hi, clamp int64)
