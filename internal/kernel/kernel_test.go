package kernel

import (
	"math"
	"testing"
)

// testRNG is a tiny local SplitMix64-based generator: the package under test
// sits below xrand in the import graph, so the tests roll their own values.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed} }

func (r *testRNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *testRNG) Intn(n int) int { return int(r.next() % uint64(n)) }

func (r *testRNG) Uint64() uint64 { return r.next() }

// Norm draws an approximately normal value (Irwin-Hall sum of 12 uniforms);
// the tests only need well-spread finite values, not exact gaussians.
func (r *testRNG) Norm() float64 {
	s := -6.0
	for i := 0; i < 12; i++ {
		s += float64(r.next()>>11) * 0x1p-53
	}
	return s
}

// refF64MulAdd is the definitional scalar loop every implementation must
// match bit for bit.
func refF64MulAdd(dst, row []float64, w float64) {
	for j := range dst {
		dst[j] += w * row[j]
	}
}

func refF64MulAdd2(dst, r1, r2 []float64, w1, w2 float64) {
	for j := range dst {
		dst[j] = (dst[j] + w1*r1[j]) + w2*r2[j]
	}
}

func refF32MulAdd(dst, row []float32, w float32) {
	for j := range dst {
		dst[j] += w * row[j]
	}
}

func refF32MulAdd2(dst, r1, r2 []float32, w1, w2 float32) {
	for j := range dst {
		dst[j] = (dst[j] + w1*r1[j]) + w2*r2[j]
	}
}

func refU64Min(dst, row []uint64) {
	for j := range dst {
		if row[j] < dst[j] {
			dst[j] = row[j]
		}
	}
}

// fill64 draws values that exercise rounding: a mix of ordinary gaussians,
// denormal-scale tinies, huge magnitudes, and the occasional NaN/Inf.
func fill64(rng *testRNG, s []float64) {
	for i := range s {
		switch rng.Intn(20) {
		case 0:
			s[i] = math.Inf(1 - 2*rng.Intn(2))
		case 1:
			s[i] = math.NaN()
		case 2:
			s[i] = rng.Norm() * 1e300
		case 3:
			s[i] = rng.Norm() * 1e-300
		default:
			s[i] = rng.Norm()
		}
	}
}

// TestF64MulAddMatchesScalar sweeps lengths 0..67 (every unroll remainder)
// with adversarial values and requires bit-identical accumulators.
func TestF64MulAddMatchesScalar(t *testing.T) {
	rng := newTestRNG(1)
	for n := 0; n <= 67; n++ {
		for rep := 0; rep < 8; rep++ {
			dst := make([]float64, n)
			row := make([]float64, n)
			r2 := make([]float64, n)
			fill64(rng, dst)
			fill64(rng, row)
			fill64(rng, r2)
			w1, w2 := rng.Norm(), rng.Norm()

			want := append([]float64(nil), dst...)
			refF64MulAdd(want, row, w1)
			got := append([]float64(nil), dst...)
			F64MulAdd(got, row, w1)
			for j := range want {
				if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
					t.Fatalf("%s: F64MulAdd n=%d lane %d: %x != %x", Impl, n, j,
						math.Float64bits(got[j]), math.Float64bits(want[j]))
				}
			}

			want2 := append([]float64(nil), dst...)
			refF64MulAdd2(want2, row, r2, w1, w2)
			got2 := append([]float64(nil), dst...)
			F64MulAdd2(got2, row, r2, w1, w2)
			// F64MulAdd2 must also equal two sequential single folds.
			seq := append([]float64(nil), dst...)
			refF64MulAdd(seq, row, w1)
			refF64MulAdd(seq, r2, w2)
			for j := range want2 {
				if math.Float64bits(want2[j]) != math.Float64bits(got2[j]) {
					t.Fatalf("%s: F64MulAdd2 n=%d lane %d differs from scalar", Impl, n, j)
				}
				if math.Float64bits(seq[j]) != math.Float64bits(got2[j]) {
					t.Fatalf("%s: F64MulAdd2 n=%d lane %d differs from sequential folds", Impl, n, j)
				}
			}
		}
	}
}

// zeroEq reports bitwise equality, tolerating differing signs of an exact
// zero — the one divergence the Set kernels permit versus folding into a
// zeroed accumulator (0 + -0 is +0; a plain store keeps -0). Sign-based
// consumers (the SimHash bit pack) treat ±0 identically.
func zeroEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) || (a == 0 && b == 0)
}

// TestF64MulAddSetMatchesScalar pins the Set kernels to their definitional
// expression bit for bit, and to fold-into-zero modulo exact-zero signs.
func TestF64MulAddSetMatchesScalar(t *testing.T) {
	rng := newTestRNG(4)
	for n := 0; n <= 67; n++ {
		for rep := 0; rep < 8; rep++ {
			dst := make([]float64, n)
			row := make([]float64, n)
			r2 := make([]float64, n)
			fill64(rng, dst) // garbage: Set must fully overwrite
			fill64(rng, row)
			fill64(rng, r2)
			w1, w2 := rng.Norm(), rng.Norm()

			got := append([]float64(nil), dst...)
			F64MulAddSet(got, row, w1)
			zero := make([]float64, n)
			refF64MulAdd(zero, row, w1)
			for j := 0; j < n; j++ {
				if math.Float64bits(got[j]) != math.Float64bits(w1*row[j]) {
					t.Fatalf("%s: F64MulAddSet n=%d lane %d differs from definition", Impl, n, j)
				}
				if !zeroEq(got[j], zero[j]) {
					t.Fatalf("%s: F64MulAddSet n=%d lane %d differs from zero-fold", Impl, n, j)
				}
			}

			got2 := append([]float64(nil), dst...)
			F64MulAdd2Set(got2, row, r2, w1, w2)
			zero2 := make([]float64, n)
			refF64MulAdd2(zero2, row, r2, w1, w2)
			for j := 0; j < n; j++ {
				if math.Float64bits(got2[j]) != math.Float64bits(w1*row[j]+w2*r2[j]) {
					t.Fatalf("%s: F64MulAdd2Set n=%d lane %d differs from definition", Impl, n, j)
				}
				if !zeroEq(got2[j], zero2[j]) {
					t.Fatalf("%s: F64MulAdd2Set n=%d lane %d differs from zero-fold", Impl, n, j)
				}
			}
		}
	}
}

// TestF32MulAddSetMatchesScalar is the float32-lane analogue.
func TestF32MulAddSetMatchesScalar(t *testing.T) {
	rng := newTestRNG(5)
	for n := 0; n <= 67; n++ {
		for rep := 0; rep < 8; rep++ {
			dst := make([]float32, n)
			row := make([]float32, n)
			r2 := make([]float32, n)
			for i := 0; i < n; i++ {
				dst[i] = float32(rng.Norm())
				row[i] = float32(rng.Norm())
				r2[i] = float32(rng.Norm())
			}
			w1, w2 := float32(rng.Norm()), float32(rng.Norm())

			got := append([]float32(nil), dst...)
			F32MulAddSet(got, row, w1)
			got2 := append([]float32(nil), dst...)
			F32MulAdd2Set(got2, row, r2, w1, w2)
			for j := 0; j < n; j++ {
				if math.Float32bits(got[j]) != math.Float32bits(w1*row[j]) {
					t.Fatalf("%s: F32MulAddSet n=%d lane %d differs", Impl, n, j)
				}
				if math.Float32bits(got2[j]) != math.Float32bits(w1*row[j]+w2*r2[j]) {
					t.Fatalf("%s: F32MulAdd2Set n=%d lane %d differs", Impl, n, j)
				}
			}
		}
	}
}

// TestF32MulAddMatchesScalar is the float32-lane analogue.
func TestF32MulAddMatchesScalar(t *testing.T) {
	rng := newTestRNG(2)
	for n := 0; n <= 67; n++ {
		for rep := 0; rep < 8; rep++ {
			dst := make([]float32, n)
			row := make([]float32, n)
			r2 := make([]float32, n)
			for i := 0; i < n; i++ {
				dst[i] = float32(rng.Norm())
				row[i] = float32(rng.Norm())
				r2[i] = float32(rng.Norm())
			}
			w1, w2 := float32(rng.Norm()), float32(rng.Norm())

			want := append([]float32(nil), dst...)
			refF32MulAdd(want, row, w1)
			got := append([]float32(nil), dst...)
			F32MulAdd(got, row, w1)
			for j := range want {
				if math.Float32bits(want[j]) != math.Float32bits(got[j]) {
					t.Fatalf("%s: F32MulAdd n=%d lane %d differs", Impl, n, j)
				}
			}

			want2 := append([]float32(nil), dst...)
			refF32MulAdd2(want2, row, r2, w1, w2)
			got2 := append([]float32(nil), dst...)
			F32MulAdd2(got2, row, r2, w1, w2)
			for j := range want2 {
				if math.Float32bits(want2[j]) != math.Float32bits(got2[j]) {
					t.Fatalf("%s: F32MulAdd2 n=%d lane %d differs", Impl, n, j)
				}
			}
		}
	}
}

// TestU64MinMatchesScalar sweeps the min-scan kernels.
func TestU64MinMatchesScalar(t *testing.T) {
	rng := newTestRNG(3)
	for n := 0; n <= 67; n++ {
		for rep := 0; rep < 8; rep++ {
			dst := make([]uint64, n)
			r1 := make([]uint64, n)
			r2 := make([]uint64, n)
			for i := 0; i < n; i++ {
				dst[i] = rng.Uint64()
				r1[i] = rng.Uint64()
				r2[i] = rng.Uint64()
			}

			want := append([]uint64(nil), dst...)
			refU64Min(want, r1)
			got := append([]uint64(nil), dst...)
			U64Min(got, r1)
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("%s: U64Min n=%d lane %d: %d != %d", Impl, n, j, got[j], want[j])
				}
			}

			want2 := append([]uint64(nil), dst...)
			refU64Min(want2, r1)
			refU64Min(want2, r2)
			got2 := append([]uint64(nil), dst...)
			U64Min2(got2, r1, r2)
			for j := range want2 {
				if want2[j] != got2[j] {
					t.Fatalf("%s: U64Min2 n=%d lane %d: %d != %d", Impl, n, j, got2[j], want2[j])
				}
			}
		}
	}
}

// The benchmarks compare the compiled-in kernels against the definitional
// scalar loop at the engine's hot shape (a fused k=20 row), so the unroll's
// win — and the purego fallback's cost — is measured, not assumed.

const benchK = 20

func BenchmarkF64MulAddKernel(b *testing.B) {
	dst := make([]float64, benchK)
	row := make([]float64, benchK)
	for i := range row {
		row[i] = float64(i) * 0.25
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		F64MulAdd(dst, row, 1.5)
	}
}

func BenchmarkF64MulAddScalarRef(b *testing.B) {
	dst := make([]float64, benchK)
	row := make([]float64, benchK)
	for i := range row {
		row[i] = float64(i) * 0.25
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refF64MulAdd(dst, row, 1.5)
	}
}

func BenchmarkF64MulAdd2Kernel(b *testing.B) {
	dst := make([]float64, benchK)
	r1 := make([]float64, benchK)
	r2 := make([]float64, benchK)
	for i := range r1 {
		r1[i] = float64(i) * 0.25
		r2[i] = float64(i) * 0.125
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		F64MulAdd2(dst, r1, r2, 1.5, 0.5)
	}
}

func BenchmarkU64MinKernel(b *testing.B) {
	dst := make([]uint64, benchK)
	row := make([]uint64, benchK)
	for i := range dst {
		dst[i] = ^uint64(0)
		row[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		U64Min(dst, row)
	}
}
