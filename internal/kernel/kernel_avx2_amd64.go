//go:build amd64 && !purego

package kernel

// useAVX2 reports whether the AVX2 kernel bodies are safe to execute: the CPU
// must advertise AVX2 and the OS must have enabled YMM state saving. Detected
// once at startup; the unrolled Go bodies remain the fallback (and the tail
// path inside the assembly).
var useAVX2 = detectAVX2()

func init() {
	if useAVX2 {
		Impl = "avx2"
	}
}

// cpuidAsm executes CPUID for the given leaf and subleaf.
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbvAsm reads XCR0. Only valid after OSXSAVE has been verified.
func xgetbvAsm() (eax, edx uint32)

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&(osxsave|avx) != osxsave|avx {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be set for YMM state to be
	// preserved across context switches.
	xlo, _ := xgetbvAsm()
	if xlo&6 != 6 {
		return false
	}
	_, ebx, _, _ := cpuidAsm(7, 0)
	return ebx&(1<<5) != 0
}

// The assembly kernels take raw pointers plus an explicit length: the Go
// wrappers have already bounds-checked every operand against len(dst), so the
// assembly only needs the element count. Each body processes 8 doubles per
// iteration on two independent accumulator chains, then a 4-wide block, then
// a scalar tail; per-lane multiply and add roundings — and x86 NaN-operand
// selection — match the unrolled Go bodies exactly.

func f64MulAddAVX2(dst, row *float64, n int, w float64)
func f64MulAdd2AVX2(dst, r1, r2 *float64, n int, w1, w2 float64)
func f64MulAdd4AVX2(dst, r1, r2, r3, r4 *float64, n int, w1, w2, w3, w4 float64)
func f64MulAddSetAVX2(dst, row *float64, n int, w float64)
func f64MulAdd2SetAVX2(dst, r1, r2 *float64, n int, w1, w2 float64)
func f64MulAdd4SetAVX2(dst, r1, r2, r3, r4 *float64, n int, w1, w2, w3, w4 float64)
