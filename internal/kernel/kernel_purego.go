//go:build purego

package kernel

// Impl names the compiled-in kernel implementation.
const Impl = "purego"

// F64MulAdd folds one weighted row into the accumulator: for every lane j,
// dst[j] += w * row[j]. Reference scalar form of the unrolled kernel; the
// per-lane evaluation order and roundings are identical.
func F64MulAdd(dst, row []float64, w float64) {
	for j := range dst {
		dst[j] += w * row[j]
	}
}

// F64MulAdd2 folds two weighted rows: dst[j] = (dst[j] + w1*r1[j]) + w2*r2[j]
// in exactly that association.
func F64MulAdd2(dst, r1, r2 []float64, w1, w2 float64) {
	for j := range dst {
		dst[j] = (dst[j] + w1*r1[j]) + w2*r2[j]
	}
}

// F64MulAdd4 folds four weighted rows:
// dst[j] = ((((dst[j] + w1*r1[j]) + w2*r2[j]) + w3*r3[j]) + w4*r4[j]).
func F64MulAdd4(dst, r1, r2, r3, r4 []float64, w1, w2, w3, w4 float64) {
	for j := range dst {
		dst[j] = (((dst[j] + w1*r1[j]) + w2*r2[j]) + w3*r3[j]) + w4*r4[j]
	}
}

// F64MulAdd4Set writes the first four weighted rows:
// dst[j] = ((w1*r1[j] + w2*r2[j]) + w3*r3[j]) + w4*r4[j].
func F64MulAdd4Set(dst, r1, r2, r3, r4 []float64, w1, w2, w3, w4 float64) {
	for j := range dst {
		dst[j] = ((w1*r1[j] + w2*r2[j]) + w3*r3[j]) + w4*r4[j]
	}
}

// F32MulAdd4 is F64MulAdd4 in the float32 lane.
func F32MulAdd4(dst, r1, r2, r3, r4 []float32, w1, w2, w3, w4 float32) {
	for j := range dst {
		dst[j] = (((dst[j] + w1*r1[j]) + w2*r2[j]) + w3*r3[j]) + w4*r4[j]
	}
}

// F32MulAdd4Set is F64MulAdd4Set in the float32 lane.
func F32MulAdd4Set(dst, r1, r2, r3, r4 []float32, w1, w2, w3, w4 float32) {
	for j := range dst {
		dst[j] = ((w1*r1[j] + w2*r2[j]) + w3*r3[j]) + w4*r4[j]
	}
}

// F64MulAddSet writes the first weighted row: dst[j] = w * row[j]. See the
// unrolled variant for the exact-zero sign caveat versus folding into a
// zeroed accumulator.
func F64MulAddSet(dst, row []float64, w float64) {
	for j := range dst {
		dst[j] = w * row[j]
	}
}

// F64MulAdd2Set writes the first two weighted rows:
// dst[j] = w1*r1[j] + w2*r2[j].
func F64MulAdd2Set(dst, r1, r2 []float64, w1, w2 float64) {
	for j := range dst {
		dst[j] = w1*r1[j] + w2*r2[j]
	}
}

// F32MulAddSet is F64MulAddSet in the float32 lane.
func F32MulAddSet(dst, row []float32, w float32) {
	for j := range dst {
		dst[j] = w * row[j]
	}
}

// F32MulAdd2Set is F64MulAdd2Set in the float32 lane.
func F32MulAdd2Set(dst, r1, r2 []float32, w1, w2 float32) {
	for j := range dst {
		dst[j] = w1*r1[j] + w2*r2[j]
	}
}

// F32MulAdd is F64MulAdd in the float32 lane.
func F32MulAdd(dst, row []float32, w float32) {
	for j := range dst {
		dst[j] += w * row[j]
	}
}

// F32MulAdd2 is F64MulAdd2 in the float32 lane.
func F32MulAdd2(dst, r1, r2 []float32, w1, w2 float32) {
	for j := range dst {
		dst[j] = (dst[j] + w1*r1[j]) + w2*r2[j]
	}
}

// U64Min folds a row of ranks into the running minima.
func U64Min(dst, row []uint64) {
	for j := range dst {
		if row[j] < dst[j] {
			dst[j] = row[j]
		}
	}
}

// U64Min2 folds two rank rows into the running minima.
func U64Min2(dst, r1, r2 []uint64) {
	for j := range dst {
		m := dst[j]
		if r1[j] < m {
			m = r1[j]
		}
		if r2[j] < m {
			m = r2[j]
		}
		dst[j] = m
	}
}
