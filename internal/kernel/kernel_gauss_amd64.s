//go:build !purego

#include "textflag.h"

// func gaussPrepAVX2(hv, mu, pres *uint64, dims *uint32, rows, k int)
//
// Integer half of the batched gaussian fill: for every (row, lane) pair,
// x = pres[lane] ^ dims[row]*0xA0761D6478BD642F is pushed through the
// SplitMix64 finalizer, hv = mix>>11 is stored, and the exact half-unit slot
// form mu = hv<<1 + 1 - (hv>>52) + ((hv>>52)&hv&1)<<1 is stored alongside.
// Four lanes per iteration with two independent chains (eight lanes) while
// they last. VEX encodings only: the 64-bit multiplies are decomposed into
// 32x32 VPMULUDQ products (x*C = lo(x)*lo(C) + (lo(x)*hi(C)+hi(x)*lo(C))<<32,
// exact mod 2^64) because EVEX VPMULLQ is microcoded on common parts and
// measures slower than scalar code. k must be a positive multiple of 4, which
// also means the flat output cursor never needs realigning between rows.
//
// Constants: Y11 = SplitMix64 increment, Y12/Y13 = multiplier 1 full/high,
// Y14/Y15 = multiplier 2 full/high, Y9 = 1. Y10 = per-row dim premultiple.
TEXT ·gaussPrepAVX2(SB), NOSPLIT, $0-48
	MOVQ hv+0(FP), DI
	MOVQ mu+8(FP), SI
	MOVQ pres+16(FP), R11
	MOVQ dims+24(FP), R10
	MOVQ rows+32(FP), R12
	MOVQ k+40(FP), R13

	MOVQ $0x9E3779B97F4A7C15, AX // SplitMix64 increment
	VMOVQ AX, X11
	VPBROADCASTQ X11, Y11
	MOVQ $0xBF58476D1CE4E5B9, AX // finalizer multiplier 1
	VMOVQ AX, X12
	VPBROADCASTQ X12, Y12
	MOVQ $0xBF58476D, AX // multiplier 1 >> 32
	VMOVQ AX, X13
	VPBROADCASTQ X13, Y13
	MOVQ $0x94D049BB133111EB, AX // finalizer multiplier 2
	VMOVQ AX, X14
	VPBROADCASTQ X14, Y14
	MOVQ $0x94D049BB, AX // multiplier 2 >> 32
	VMOVQ AX, X15
	VPBROADCASTQ X15, Y15
	MOVQ $1, AX
	VMOVQ AX, X9
	VPBROADCASTQ X9, Y9
	MOVQ $0xA0761D6478BD642F, R14 // dimension pre-multiplier

	TESTQ R12, R12
	JE    gp_done

gp_row:
	MOVL (R10), AX
	ADDQ $4, R10
	IMULQ R14, AX
	VMOVQ AX, X10
	VPBROADCASTQ X10, Y10
	XORQ BX, BX
	MOVQ R13, CX
	ANDQ $-8, CX
	CMPQ BX, CX
	JGE  gp_lane4

gp_lane8:
	VMOVDQU  (R11)(BX*8), Y0
	VMOVDQU  32(R11)(BX*8), Y4
	VPXOR    Y10, Y0, Y0
	VPXOR    Y10, Y4, Y4
	VPADDQ   Y11, Y0, Y0
	VPADDQ   Y11, Y4, Y4
	VPSRLQ   $30, Y0, Y1
	VPSRLQ   $30, Y4, Y5
	VPXOR    Y1, Y0, Y0
	VPXOR    Y5, Y4, Y4

	// x *= multiplier 1 (32x32 decomposition)
	VPSRLQ   $32, Y0, Y1
	VPSRLQ   $32, Y4, Y5
	VPMULUDQ Y12, Y1, Y1
	VPMULUDQ Y12, Y5, Y5
	VPMULUDQ Y13, Y0, Y2
	VPMULUDQ Y13, Y4, Y6
	VPADDQ   Y2, Y1, Y1
	VPADDQ   Y6, Y5, Y5
	VPSLLQ   $32, Y1, Y1
	VPSLLQ   $32, Y5, Y5
	VPMULUDQ Y12, Y0, Y0
	VPMULUDQ Y12, Y4, Y4
	VPADDQ   Y1, Y0, Y0
	VPADDQ   Y5, Y4, Y4

	VPSRLQ   $27, Y0, Y1
	VPSRLQ   $27, Y4, Y5
	VPXOR    Y1, Y0, Y0
	VPXOR    Y5, Y4, Y4

	// x *= multiplier 2
	VPSRLQ   $32, Y0, Y1
	VPSRLQ   $32, Y4, Y5
	VPMULUDQ Y14, Y1, Y1
	VPMULUDQ Y14, Y5, Y5
	VPMULUDQ Y15, Y0, Y2
	VPMULUDQ Y15, Y4, Y6
	VPADDQ   Y2, Y1, Y1
	VPADDQ   Y6, Y5, Y5
	VPSLLQ   $32, Y1, Y1
	VPSLLQ   $32, Y5, Y5
	VPMULUDQ Y14, Y0, Y0
	VPMULUDQ Y14, Y4, Y4
	VPADDQ   Y1, Y0, Y0
	VPADDQ   Y5, Y4, Y4

	VPSRLQ   $31, Y0, Y1
	VPSRLQ   $31, Y4, Y5
	VPXOR    Y1, Y0, Y0
	VPXOR    Y5, Y4, Y4
	VPSRLQ   $11, Y0, Y0
	VPSRLQ   $11, Y4, Y4
	VMOVDQU  Y0, (DI)
	VMOVDQU  Y4, 32(DI)

	// mu = hv<<1 + 1 - b + (b&hv&1)<<1, b = hv>>52
	VPSRLQ   $52, Y0, Y1
	VPSRLQ   $52, Y4, Y5
	VPSLLQ   $1, Y0, Y2
	VPSLLQ   $1, Y4, Y6
	VPADDQ   Y9, Y2, Y2
	VPADDQ   Y9, Y6, Y6
	VPSUBQ   Y1, Y2, Y2
	VPSUBQ   Y5, Y6, Y6
	VPAND    Y0, Y1, Y3
	VPAND    Y4, Y5, Y7
	VPAND    Y9, Y3, Y3
	VPAND    Y9, Y7, Y7
	VPSLLQ   $1, Y3, Y3
	VPSLLQ   $1, Y7, Y7
	VPADDQ   Y3, Y2, Y2
	VPADDQ   Y7, Y6, Y6
	VMOVDQU  Y2, (SI)
	VMOVDQU  Y6, 32(SI)
	ADDQ     $64, DI
	ADDQ     $64, SI
	ADDQ     $8, BX
	CMPQ     BX, CX
	JLT      gp_lane8

gp_lane4:
	CMPQ BX, R13
	JGE  gp_row_done
	VMOVDQU  (R11)(BX*8), Y0
	VPXOR    Y10, Y0, Y0
	VPADDQ   Y11, Y0, Y0
	VPSRLQ   $30, Y0, Y1
	VPXOR    Y1, Y0, Y0
	VPSRLQ   $32, Y0, Y1
	VPMULUDQ Y12, Y1, Y1
	VPMULUDQ Y13, Y0, Y2
	VPADDQ   Y2, Y1, Y1
	VPSLLQ   $32, Y1, Y1
	VPMULUDQ Y12, Y0, Y0
	VPADDQ   Y1, Y0, Y0
	VPSRLQ   $27, Y0, Y1
	VPXOR    Y1, Y0, Y0
	VPSRLQ   $32, Y0, Y1
	VPMULUDQ Y14, Y1, Y1
	VPMULUDQ Y15, Y0, Y2
	VPADDQ   Y2, Y1, Y1
	VPSLLQ   $32, Y1, Y1
	VPMULUDQ Y14, Y0, Y0
	VPADDQ   Y1, Y0, Y0
	VPSRLQ   $31, Y0, Y1
	VPXOR    Y1, Y0, Y0
	VPSRLQ   $11, Y0, Y0
	VMOVDQU  Y0, (DI)
	VPSRLQ   $52, Y0, Y1
	VPSLLQ   $1, Y0, Y2
	VPADDQ   Y9, Y2, Y2
	VPSUBQ   Y1, Y2, Y2
	VPAND    Y0, Y1, Y3
	VPAND    Y9, Y3, Y3
	VPSLLQ   $1, Y3, Y3
	VPADDQ   Y3, Y2, Y2
	VMOVDQU  Y2, (SI)
	ADDQ     $32, DI
	ADDQ     $32, SI
	ADDQ     $4, BX
	JMP      gp_lane4

gp_row_done:
	DECQ R12
	JNZ  gp_row

gp_done:
	VZEROUPPER
	RET

// func gaussInterpAVX2(out *float64, mu *uint64, tails *byte, tab *float64, n int, lo, hi, clamp int64)
//
// Table-interpolation half of the batched gaussian fill, four lanes wide.
// Per lane: slot = mu>>42; if slot < lo or slot > hi the lane is a tail —
// its bit is recorded in the per-group tails byte and its output (computed
// from a slot clamped into the table) is garbage the caller overwrites.
// Central lanes get out = tab[slot][0] + float64(mu&(1<<42-1))*2^-42*
// tab[slot][1], with the u64->f64 conversion done by the exact
// or-magic/subtract trick (frac < 2^52) and the same two roundings as the
// scalar code. The two table columns are fetched with VGATHERQPD at indices
// slot*2 and slot*2+1. n must be a multiple of 4.
//
// Constants: Y15 = frac mask, Y14 = 2^52 magic (int and double views
// coincide), Y13 = 2^-42, Y12 = lo, Y11 = hi, Y10 = clamp.
TEXT ·gaussInterpAVX2(SB), NOSPLIT, $0-64
	MOVQ out+0(FP), DI
	MOVQ mu+8(FP), SI
	MOVQ tails+16(FP), R9
	MOVQ tab+24(FP), DX
	MOVQ n+32(FP), CX

	MOVQ $0x000003FFFFFFFFFF, AX // 1<<42 - 1
	VMOVQ AX, X15
	VPBROADCASTQ X15, Y15
	MOVQ $0x4330000000000000, AX // 2^52
	VMOVQ AX, X14
	VPBROADCASTQ X14, Y14
	MOVQ $0x3D50000000000000, AX // 0x1p-42
	VMOVQ AX, X13
	VPBROADCASTQ X13, Y13
	MOVQ lo+40(FP), AX
	VMOVQ AX, X12
	VPBROADCASTQ X12, Y12
	MOVQ hi+48(FP), AX
	VMOVQ AX, X11
	VPBROADCASTQ X11, Y11
	MOVQ clamp+56(FP), AX
	VMOVQ AX, X10
	VPBROADCASTQ X10, Y10

	XORQ BX, BX

gi_loop:
	VMOVDQU  (SI)(BX*8), Y0   // mu
	VPSRLQ   $42, Y0, Y1      // slot
	VPCMPGTQ Y1, Y12, Y2      // lo > slot
	VPCMPGTQ Y11, Y1, Y3      // slot > hi
	VPOR     Y3, Y2, Y2       // tail lanes
	VMOVMSKPD Y2, AX
	MOVB     AX, (R9)
	INCQ     R9
	VPAND    Y10, Y1, Y1      // clamp slot for safe gathers
	VPSLLQ   $1, Y1, Y4       // pair index = slot*2
	VPCMPEQQ Y7, Y7, Y7
	VGATHERQPD Y7, (DX)(Y4*8), Y5   // tab[slot][0]
	VPCMPEQQ Y7, Y7, Y7
	VGATHERQPD Y7, 8(DX)(Y4*8), Y6  // tab[slot][1]
	VPAND    Y15, Y0, Y8      // frac bits
	VPOR     Y14, Y8, Y8
	VSUBPD   Y14, Y8, Y8      // float64(frac), exact
	VMULPD   Y13, Y8, Y8      // * 2^-42, exact
	VMULPD   Y6, Y8, Y8       // * tab[slot][1]
	VADDPD   Y5, Y8, Y8       // + tab[slot][0]
	VMOVUPD  Y8, (DI)(BX*8)
	ADDQ     $4, BX
	CMPQ     BX, CX
	JLT      gi_loop

	VZEROUPPER
	RET
