//go:build purego || !amd64

package kernel

// GaussPrepSize reports whether GaussPrep handles rows of width k. Without
// the vector body there is no reason to split the fill into two passes, so
// this build always answers no and callers keep their fused scalar loop.
func GaussPrepSize(k int) bool { return false }

// GaussPrep is unreachable when GaussPrepSize is constant-false.
func GaussPrep(hv, mu []uint64, pres []uint64, dims []uint32) {
	panic("kernel: no asm")
}

// GaussInterp is unreachable when GaussPrepSize is constant-false.
func GaussInterp(out []float64, mu []uint64, tails []byte, tab [][2]float64, tailSlots int) {
	panic("kernel: no asm")
}
