package lshjoin

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"lshjoin/internal/core"
	"lshjoin/internal/faultfs"
	"lshjoin/internal/lsh"
	"lshjoin/internal/lsh/persist"
	"lshjoin/internal/xrand"
)

// CrossJoin estimates general (non-self) join sizes between two collections
// hashed with the same LSH functions (App. B.2.2). It is a live object:
// both sides are writable (InsertLeft / InsertRight and their batch forms)
// and optionally sharded (Options.Shards partitions each side across S
// independent index shards, exactly like NewSharded). Estimates run over an
// atomically captured pair of shard-snapshot vectors — the merged bipartite
// bucket matching between the two groups decomposes into per-shard-pair
// matchings, so the general LSH-SS estimator serves over shards with
// statistics exactly equal to the unsharded union (N_H, M, membership).
//
// With Shards == 1 and no inserts, a CrossJoin is draw-for-draw identical
// to the static single-snapshot cross join of earlier releases: same
// indexes, same estimator seed stream, same results. All methods are safe
// for unsynchronized concurrent use.
type CrossJoin struct {
	opt    Options
	family lsh.Family
	sim    core.SimFunc
	left   *lsh.ShardGroup
	right  *lsh.ShardGroup

	// Durable backing (nil for in-memory cross joins), one store per shard
	// per side; closed flips once.
	leftStores, rightStores []*persist.Store
	closed                  atomic.Bool

	seedCtr atomic.Uint64

	// The bipartite stratum view (the bucket matchings estimates sample
	// through) is rebuilt lazily whenever either side published; the cache
	// is keyed on the full version-vector pair — summed versions alias
	// across concurrent captures — at per-shard-pair granularity, so a
	// single-shard publish rebuilds one row of components and reuses the
	// rest (see core.BipartiteStratumCache).
	strat *core.BipartiteStratumCache
}

// NewCrossJoin indexes both sides with identical hash functions. Options
// semantics match New, with two differences: Shards is honored (each side
// is partitioned across Options.Shards index shards, default 1), and
// Tables must be 1 — the general estimator stratifies by the single
// bipartite bucket matching of App. B.2.2, and a multi-table request is
// rejected with an error rather than silently discarded. With Options.Dir
// set, a durable two-sided store is created there — one group store per
// side under a cross manifest — and every published shard version on either
// side persists across restarts; reopen with OpenCrossJoin and call Close
// to checkpoint on shutdown.
func NewCrossJoin(left, right []Vector, opt Options) (*CrossJoin, error) {
	opt, err := opt.normalized()
	if err != nil {
		return nil, err
	}
	if opt.Tables != 1 {
		return nil, fmt.Errorf("%w: cross join supports exactly 1 table, got Tables = %d (App. B.2.2 stratifies by one bipartite bucket matching)", ErrInvalidOptions, opt.Tables)
	}
	if len(left) == 0 || len(right) == 0 {
		return nil, fmt.Errorf("lshjoin: cross join needs non-empty sides")
	}
	// Ids pack (shard, local) into one int (see lsh.GroupID); with more than
	// one shard the shard bits don't fit a 32-bit int.
	if opt.Shards > 1 && bits.UintSize < 64 {
		return nil, fmt.Errorf("lshjoin: Shards > 1 requires a 64-bit platform (vector ids pack shard and local index into one int)")
	}
	family, sim, err := familyFor(opt)
	if err != nil {
		return nil, err
	}
	lg, err := lsh.NewShardGroupSigned(left, family, opt.K, 1, opt.Shards, opt.signConfig())
	if err != nil {
		return nil, fmt.Errorf("lshjoin: left index: %w", err)
	}
	rg, err := lsh.NewShardGroupSigned(right, family, opt.K, 1, opt.Shards, opt.signConfig())
	if err != nil {
		return nil, fmt.Errorf("lshjoin: right index: %w", err)
	}
	cj := &CrossJoin{
		opt: opt, family: family, sim: sim, left: lg, right: rg,
		strat: core.NewBipartiteStratumCache(0),
	}
	if opt.Dir != "" {
		if cj.leftStores, cj.rightStores, err = persist.CreateCross(faultfs.OS{}, opt.Dir, lg, rg); err != nil {
			return nil, fmt.Errorf("lshjoin: %w", err)
		}
		applyStorePolicy(opt, cj.leftStores...)
		applyStorePolicy(opt, cj.rightStores...)
	}
	return cj, nil
}

// NewCrossJoinSharded is NewCrossJoin with an explicit shard count: it
// overrides Options.Shards with shards and routes each side across that
// many index shards. It exists for symmetry with NewSharded; NewCrossJoin
// with Options.Shards set behaves identically.
func NewCrossJoinSharded(left, right []Vector, opt Options, shards int) (*CrossJoin, error) {
	opt.Shards = shards
	return NewCrossJoin(left, right, opt)
}

// capture publishes pending inserts on both sides and returns the pair of
// shard-snapshot vectors one estimate runs over. Each side's vector is
// internally consistent and immutable; a concurrent writer that races the
// capture lands in the next one.
func (cj *CrossJoin) capture() (l, r *lsh.GroupSnapshot) {
	return cj.left.Capture(), cj.right.Capture()
}

// Shards returns the per-side shard count S.
func (cj *CrossJoin) Shards() int { return cj.left.S() }

// LeftN and RightN return the side sizes |U| and |V|, including all
// completed inserts.
func (cj *CrossJoin) LeftN() int  { return cj.left.Capture().N() }
func (cj *CrossJoin) RightN() int { return cj.right.Capture().N() }

// LeftVersions and RightVersions return the per-shard publish versions of
// the latest captured side (1 per fresh shard).
func (cj *CrossJoin) LeftVersions() []uint64  { return cj.left.Capture().Versions() }
func (cj *CrossJoin) RightVersions() []uint64 { return cj.right.Capture().Versions() }

// LeftVector and RightVector return the vector with the given id (as
// returned by InsertLeft / InsertRight, or a dense initial id for the
// construction-time vectors of a single-shard cross join).
func (cj *CrossJoin) LeftVector(id int) Vector  { return groupVector(cj.left, id) }
func (cj *CrossJoin) RightVector(id int) Vector { return groupVector(cj.right, id) }

func groupVector(g *lsh.ShardGroup, id int) Vector {
	s, local := lsh.SplitGroupID(int64(id))
	return g.Capture().Snap(s).Data()[local]
}

// InsertLeft adds a vector to the left side, returning its id (shard-encoded
// like ShardedCollection ids; a plain dense id with one shard). Only the
// vector's home shard serializes, so inserts on different shards proceed in
// parallel, and estimates keep serving over captured snapshots throughout.
func (cj *CrossJoin) InsertLeft(v Vector) int {
	id := cj.left.Insert(v)
	cj.maybePublish(cj.left, int(id))
	return int(id)
}

// InsertRight adds a vector to the right side; see InsertLeft.
func (cj *CrossJoin) InsertRight(v Vector) int {
	id := cj.right.Insert(v)
	cj.maybePublish(cj.right, int(id))
	return int(id)
}

// InsertBatchLeft routes each vector to its home shard of the left side and
// batch-inserts the per-shard runs through the batched signature engine,
// returning per-vector ids aligned with vs.
func (cj *CrossJoin) InsertBatchLeft(vs []Vector) []int { return cj.insertBatch(cj.left, vs) }

// InsertBatchRight batch-inserts into the right side; see InsertBatchLeft.
func (cj *CrossJoin) InsertBatchRight(vs []Vector) []int { return cj.insertBatch(cj.right, vs) }

func (cj *CrossJoin) insertBatch(g *lsh.ShardGroup, vs []Vector) []int {
	ids64 := g.InsertBatch(vs)
	ids := make([]int, len(ids64))
	seen := make(map[int]struct{})
	for i, id := range ids64 {
		ids[i] = int(id)
		s, _ := lsh.SplitGroupID(id)
		seen[s] = struct{}{}
	}
	for s := range seen {
		cj.maybePublishShard(g, s)
	}
	return ids
}

// maybePublish applies the per-side size-based publication policy to the
// home shard of a freshly inserted id.
func (cj *CrossJoin) maybePublish(g *lsh.ShardGroup, id int) {
	s, _ := lsh.SplitGroupID(int64(id))
	cj.maybePublishShard(g, s)
}

func (cj *CrossJoin) maybePublishShard(g *lsh.ShardGroup, s int) {
	if p := cj.opt.PublishEvery; p > 0 && g.Shard(s).Pending() >= p {
		g.Shard(s).Snapshot()
	}
}

// stratum returns the bipartite stratum view for the captured pair,
// reusing the cached one when neither side moved — a static corpus served
// with repeated estimates builds the bucket matchings once, like the old
// static cross join did at construction. The cache is per-shard-pair: a
// publish on one shard rebuilds only that shard's row (or column) of
// bipartite components, outside the lock, and the view advances only to a
// componentwise-dominating version-vector pair (summed versions alias
// across concurrent captures); a reader that raced publication gets a
// correct one-off view without evicting a newer cached one.
func (cj *CrossJoin) stratum(lgs, rgs *lsh.GroupSnapshot) (core.BipartiteStratum, error) {
	return cj.strat.View(lgs, rgs)
}

// EstimateJoinSize runs the general LSH-SS estimator at tau with the default
// budget (m_H = m_L = (|U|+|V|)/2) over the current captured pair.
func (cj *CrossJoin) EstimateJoinSize(tau float64) (float64, error) {
	return cj.EstimateJoinSizeBudget(tau, 0, 0)
}

// EstimateJoinSizeBudget runs general LSH-SS with explicit per-stratum
// sample budgets (≤ 0 keeps the default). Larger m_L widens the reliable
// regime of SampleL at mid thresholds at proportional cost.
func (cj *CrossJoin) EstimateJoinSizeBudget(tau float64, mH, mL int) (float64, error) {
	ctr := cj.seedCtr.Add(1)
	lgs, rgs := cj.capture()
	bs, err := cj.stratum(lgs, rgs)
	if err != nil {
		return 0, err
	}
	var opts []core.GeneralOption
	if mH > 0 || mL > 0 {
		n := (lgs.N() + rgs.N()) / 2
		if mH <= 0 {
			mH = n
		}
		if mL <= 0 {
			mL = n
		}
		opts = append(opts, core.WithGeneralSampleSizes(mH, mL))
	}
	est, err := core.NewGeneralLSHSSOver(bs, cj.sim, opts...)
	if err != nil {
		return 0, err
	}
	return est.Estimate(tau, xrand.New(xrand.Mix2(cj.opt.Seed^0xC105515, ctr)))
}

// EstimateJoinSizeCurve estimates the general selectivity curve J(τ) for a
// grid of thresholds from one shared sampling pass over the current
// captured pair — the cross-join analogue of Collection.EstimateJoinSizeCurve.
func (cj *CrossJoin) EstimateJoinSizeCurve(taus []float64) ([]float64, error) {
	ctr := cj.seedCtr.Add(1)
	lgs, rgs := cj.capture()
	bs, err := cj.stratum(lgs, rgs)
	if err != nil {
		return nil, err
	}
	est, err := core.NewGeneralLSHSSOver(bs, cj.sim)
	if err != nil {
		return nil, err
	}
	return est.EstimateCurve(taus, xrand.New(xrand.Mix2(cj.opt.Seed^0xC105515, ctr)))
}

// ExactJoinSize computes the true cross-join size by exhaustive comparison
// over the current captured pair (O(|U|·|V|); for validation and modest
// sizes).
func (cj *CrossJoin) ExactJoinSize(tau float64) int64 {
	lgs, rgs := cj.capture()
	return core.ExactGeneralJoin(lgs.Data(), rgs.Data(), cj.sim, tau)
}

// PairsSharingBucket returns N_H = Σ b_j·c_i over buckets with matching g
// values — the bipartite analogue of the extended index's bucket counts,
// summed over the per-shard-pair matchings (exactly equal to the unsharded
// union's N_H).
func (cj *CrossJoin) PairsSharingBucket() int64 {
	lgs, rgs := cj.capture()
	bs, err := cj.stratum(lgs, rgs)
	if err != nil {
		return 0
	}
	return bs.NH()
}
