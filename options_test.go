package lshjoin

import (
	"errors"
	"testing"

	"lshjoin/internal/lsh"
)

// Every constructor must reject the same broken Options with the same
// sentinel, so callers can errors.Is(err, ErrInvalidOptions) regardless of
// which entry point they used.
func TestInvalidOptionsSentinel(t *testing.T) {
	vecs := fixtureVectors(t, 16)
	left, right := vecs[:8], vecs[8:]

	bad := []struct {
		name string
		opt  Options
	}{
		{"negative_k", Options{K: -1}},
		{"negative_tables", Options{Tables: -2}},
		{"negative_publish_every", Options{PublishEvery: -1}},
		{"negative_shards", Options{Shards: -3}},
		{"unknown_measure", Options{Measure: Measure(42)}},
		{"too_many_shards", Options{Shards: lsh.MaxShards + 1}},
		{"negative_sign_panel", Options{SignPanelBytes: -1}},
		{"negative_checkpoint_bytes", Options{CheckpointBytes: -1}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(vecs, tc.opt); !errors.Is(err, ErrInvalidOptions) {
				t.Errorf("New: got %v, want ErrInvalidOptions", err)
			}
			if _, err := NewSharded(vecs, tc.opt); !errors.Is(err, ErrInvalidOptions) {
				t.Errorf("NewSharded: got %v, want ErrInvalidOptions", err)
			}
			if _, err := NewCrossJoin(left, right, tc.opt); !errors.Is(err, ErrInvalidOptions) {
				t.Errorf("NewCrossJoin: got %v, want ErrInvalidOptions", err)
			}
		})
	}
}

// Restrictions specific to one constructor still wrap the shared sentinel.
func TestInvalidOptionsConstructorSpecific(t *testing.T) {
	vecs := fixtureVectors(t, 16)
	left, right := vecs[:8], vecs[8:]

	if _, err := NewCrossJoin(left, right, Options{Tables: 2}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("cross join with Tables=2: got %v, want ErrInvalidOptions", err)
	}
	if _, err := New(vecs, Options{Dir: t.TempDir(), Float32Signing: true}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("durable collection with Float32Signing: got %v, want ErrInvalidOptions", err)
	}
	// The same Dir-dependent rejection must fire on the durable cross-join
	// path (NewCrossJoin accepts Dir since cross joins became durable) and on
	// every opener, where Dir arrives as an argument rather than an option.
	if _, err := NewCrossJoin(left, right, Options{Dir: t.TempDir(), Float32Signing: true}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("durable cross join with Float32Signing: got %v, want ErrInvalidOptions", err)
	}
	if _, err := Open(t.TempDir(), Options{Float32Signing: true}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Open with Float32Signing: got %v, want ErrInvalidOptions", err)
	}
	if _, err := OpenSharded(t.TempDir(), Options{Float32Signing: true}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("OpenSharded with Float32Signing: got %v, want ErrInvalidOptions", err)
	}
	if _, err := OpenCrossJoin(t.TempDir(), Options{Float32Signing: true}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("OpenCrossJoin with Float32Signing: got %v, want ErrInvalidOptions", err)
	}
}

// Valid options keep working through the shared validation path.
func TestValidOptionsStillAccepted(t *testing.T) {
	vecs := fixtureVectors(t, 32)
	if _, err := New(vecs, Options{K: 8, Tables: 2, Seed: 5, PublishEvery: 3}); err != nil {
		t.Fatalf("New rejected valid options: %v", err)
	}
	if _, err := NewSharded(vecs, Options{Shards: 3, Measure: JaccardSimilarity}); err != nil {
		t.Fatalf("NewSharded rejected valid options: %v", err)
	}
	if _, err := New(vecs, Options{Float32Signing: true, SignPanelBytes: 1 << 12}); err != nil {
		t.Fatalf("New rejected float32 panel-streamed signing: %v", err)
	}
}
