package lshjoin

import (
	"fmt"

	"lshjoin/internal/core"
	"lshjoin/internal/dataset"
	"lshjoin/internal/lsh"
	"lshjoin/internal/vecio"
	"lshjoin/internal/xrand"
)

// DatasetKind names one of the built-in synthetic workload generators that
// replay the shapes of the paper's evaluation corpora (see DESIGN.md §3).
type DatasetKind string

// Built-in dataset kinds.
const (
	// DatasetDBLP: binary title vectors, ~56k vocab, avg ~14 features,
	// near/exact duplicate clusters (paper's DBLP, §6.1).
	DatasetDBLP DatasetKind = "dblp"
	// DatasetNYT: long TF-IDF articles, ~100k vocab, avg ~232 features.
	DatasetNYT DatasetKind = "nyt"
	// DatasetPubMed: largely dissimilar TF-IDF abstracts, ~140k vocab
	// (App. C.4's small-k regime).
	DatasetPubMed DatasetKind = "pubmed"
)

// GenerateDataset produces n vectors of the given kind, deterministically
// from seed.
func GenerateDataset(kind DatasetKind, n int, seed uint64) ([]Vector, error) {
	d, err := dataset.Generate(dataset.Kind(kind), n, seed)
	if err != nil {
		return nil, err
	}
	return d.Vectors, nil
}

// RecommendedK returns the paper's LSH parameter for a dataset kind (20 for
// DBLP/NYT, 5 for PubMed-like dissimilar data).
func RecommendedK(kind DatasetKind) (int, error) {
	d, err := dataset.Generate(dataset.Kind(kind), 2, 1)
	if err != nil {
		return 0, err
	}
	return d.RecommendedK, nil
}

// SaveVectors writes a collection to path in the compact binary format of
// cmd/vsjgen (atomic rename).
func SaveVectors(path string, vectors []Vector) error {
	return vecio.WriteFile(path, vectors)
}

// LoadVectors reads a collection written by SaveVectors.
func LoadVectors(path string) ([]Vector, error) {
	return vecio.ReadFile(path)
}

// CrossJoin estimates general (non-self) join sizes between two collections
// hashed with the same LSH functions (App. B.2.2).
type CrossJoin struct {
	left, right []Vector
	sim         core.SimFunc
	bp          *lsh.Bipartite
	seed        uint64
	seedCtr     uint64
}

// NewCrossJoin indexes both sides with identical hash functions. Options
// semantics match New; Tables is forced to 1.
func NewCrossJoin(left, right []Vector, opt Options) (*CrossJoin, error) {
	opt.fillDefaults()
	opt.Tables = 1
	if len(left) == 0 || len(right) == 0 {
		return nil, fmt.Errorf("lshjoin: cross join needs non-empty sides")
	}
	var family lsh.Family
	var sim core.SimFunc
	switch opt.Measure {
	case CosineSimilarity:
		family = lsh.NewSimHash(opt.Seed)
		sim = Cosine
	case JaccardSimilarity:
		family = lsh.NewMinHash(opt.Seed)
		sim = Jaccard
	default:
		return nil, fmt.Errorf("lshjoin: unknown measure %d", opt.Measure)
	}
	li, err := lsh.BuildSnapshot(left, family, opt.K, 1)
	if err != nil {
		return nil, fmt.Errorf("lshjoin: left index: %w", err)
	}
	ri, err := lsh.BuildSnapshot(right, family, opt.K, 1)
	if err != nil {
		return nil, fmt.Errorf("lshjoin: right index: %w", err)
	}
	bp, err := lsh.NewBipartite(li, ri, 0)
	if err != nil {
		return nil, fmt.Errorf("lshjoin: %w", err)
	}
	return &CrossJoin{left: left, right: right, sim: sim, bp: bp, seed: opt.Seed}, nil
}

// EstimateJoinSize runs the general LSH-SS estimator at tau with the default
// budget (m_H = m_L = (|U|+|V|)/2).
func (cj *CrossJoin) EstimateJoinSize(tau float64) (float64, error) {
	return cj.EstimateJoinSizeBudget(tau, 0, 0)
}

// EstimateJoinSizeBudget runs general LSH-SS with explicit per-stratum
// sample budgets (≤ 0 keeps the default). Larger m_L widens the reliable
// regime of SampleL at mid thresholds at proportional cost.
func (cj *CrossJoin) EstimateJoinSizeBudget(tau float64, mH, mL int) (float64, error) {
	cj.seedCtr++
	var opts []core.GeneralOption
	if mH > 0 || mL > 0 {
		n := (len(cj.left) + len(cj.right)) / 2
		if mH <= 0 {
			mH = n
		}
		if mL <= 0 {
			mL = n
		}
		opts = append(opts, core.WithGeneralSampleSizes(mH, mL))
	}
	est, err := core.NewGeneralLSHSS(cj.bp, cj.sim, opts...)
	if err != nil {
		return 0, err
	}
	return est.Estimate(tau, xrand.New(xrand.Mix2(cj.seed^0xC105515, cj.seedCtr)))
}

// ExactJoinSize computes the true cross-join size by exhaustive comparison
// (O(|U|·|V|); for validation and modest sizes).
func (cj *CrossJoin) ExactJoinSize(tau float64) int64 {
	return core.ExactGeneralJoin(cj.left, cj.right, cj.sim, tau)
}

// PairsSharingBucket returns N_H = Σ b_j·c_i over buckets with matching g
// values — the bipartite analogue of the extended index's bucket counts.
func (cj *CrossJoin) PairsSharingBucket() int64 { return cj.bp.NH() }

// SuggestK runs the Optimal-k heuristic of App. B.1 (Definition 4): the
// minimum k ∈ [kMin, kMax] whose stratum-H precision P(T|H) at the reference
// threshold reaches rho, measured on the given vectors with cosine SimHash.
// If no candidate reaches rho, kMax is returned (the appendix notes data
// without duplicates may cap precision below any target).
func SuggestK(vectors []Vector, tauRef, rho float64, kMin, kMax int, seed uint64) (int, error) {
	if seed == 0 {
		seed = 1
	}
	k, _, err := core.OptimalK(vectors, lsh.NewSimHash(seed), nil, tauRef, rho,
		kMin, kMax, 4000, 4000, xrand.New(seed^0x0B71))
	return k, err
}
