package lshjoin

import (
	"lshjoin/internal/core"
	"lshjoin/internal/dataset"
	"lshjoin/internal/lsh"
	"lshjoin/internal/vecio"
	"lshjoin/internal/xrand"
)

// DatasetKind names one of the built-in synthetic workload generators that
// replay the shapes of the paper's evaluation corpora (see DESIGN.md §3).
type DatasetKind string

// Built-in dataset kinds.
const (
	// DatasetDBLP: binary title vectors, ~56k vocab, avg ~14 features,
	// near/exact duplicate clusters (paper's DBLP, §6.1).
	DatasetDBLP DatasetKind = "dblp"
	// DatasetNYT: long TF-IDF articles, ~100k vocab, avg ~232 features.
	DatasetNYT DatasetKind = "nyt"
	// DatasetPubMed: largely dissimilar TF-IDF abstracts, ~140k vocab
	// (App. C.4's small-k regime).
	DatasetPubMed DatasetKind = "pubmed"
)

// GenerateDataset produces n vectors of the given kind, deterministically
// from seed.
func GenerateDataset(kind DatasetKind, n int, seed uint64) ([]Vector, error) {
	d, err := dataset.Generate(dataset.Kind(kind), n, seed)
	if err != nil {
		return nil, err
	}
	return d.Vectors, nil
}

// RecommendedK returns the paper's LSH parameter for a dataset kind (20 for
// DBLP/NYT, 5 for PubMed-like dissimilar data).
func RecommendedK(kind DatasetKind) (int, error) {
	d, err := dataset.Generate(dataset.Kind(kind), 2, 1)
	if err != nil {
		return 0, err
	}
	return d.RecommendedK, nil
}

// SaveVectors writes a collection to path in the compact binary format of
// cmd/vsjgen (atomic rename).
func SaveVectors(path string, vectors []Vector) error {
	return vecio.WriteFile(path, vectors)
}

// LoadVectors reads a collection written by SaveVectors.
func LoadVectors(path string) ([]Vector, error) {
	return vecio.ReadFile(path)
}

// SuggestK runs the Optimal-k heuristic of App. B.1 (Definition 4): the
// minimum k ∈ [kMin, kMax] whose stratum-H precision P(T|H) at the reference
// threshold reaches rho, measured on the given vectors with cosine SimHash.
// If no candidate reaches rho, kMax is returned (the appendix notes data
// without duplicates may cap precision below any target).
func SuggestK(vectors []Vector, tauRef, rho float64, kMin, kMax int, seed uint64) (int, error) {
	if seed == 0 {
		seed = 1
	}
	k, _, err := core.OptimalK(vectors, lsh.NewSimHash(seed), nil, tauRef, rho,
		kMin, kMax, 4000, 4000, xrand.New(seed^0x0B71))
	return k, err
}
