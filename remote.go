package lshjoin

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"lshjoin/internal/core"
	"lshjoin/internal/exactjoin"
	"lshjoin/internal/lsh"
	"lshjoin/internal/lsh/persist"
	"lshjoin/internal/shardrpc"
	"lshjoin/internal/xrand"
)

// Typed network errors, re-exported so callers can errors.Is against them
// without importing internals.
var (
	// ErrShardUnavailable reports a shard server that could not be reached
	// or did not answer within the call timeout, after the configured
	// retries. No partial estimate is ever served: the whole call fails.
	ErrShardUnavailable = shardrpc.ErrUnavailable
	// ErrShardProtocol reports a shard server speaking the protocol wrong:
	// corrupt frames, malformed payloads, mismatched responses, or an
	// identity change across a reconnect.
	ErrShardProtocol = shardrpc.ErrProtocol
)

// RemoteOption tunes a RemoteCollection's transport.
type RemoteOption func(*remoteOpts)

type remoteOpts struct {
	rpc shardrpc.ClientOptions
}

// WithDialTimeout bounds connection establishment per shard (default 5s).
func WithDialTimeout(d time.Duration) RemoteOption {
	return func(o *remoteOpts) { o.rpc.DialTimeout = d }
}

// WithCallTimeout bounds one request/response exchange per shard (default
// 10s). A shard that does not answer within it is unavailable; calls never
// hang.
func WithCallTimeout(d time.Duration) RemoteOption {
	return func(o *remoteOpts) { o.rpc.CallTimeout = d }
}

// WithRetryPolicy sets how many times a transiently failed idempotent call
// is re-attempted (retries ≥ 0; 0 disables retries) and the backoff before
// the first retry, doubling per attempt.
func WithRetryPolicy(retries int, backoff time.Duration) RemoteOption {
	return func(o *remoteOpts) {
		if retries <= 0 {
			o.rpc = o.rpc.WithNoRetries()
		} else {
			o.rpc.Retries = retries
		}
		o.rpc.Backoff = backoff
	}
}

// RemoteCollection is the coordinator side of network shard serving: the
// estimate surface of a ShardedCollection over S shard servers instead of S
// in-process shards. addrs[s] serves shard s of the consistent-hash key
// space — Insert routes with the same jump-hash routing as NewSharded, and
// reads fetch per-shard snapshots (with a version-checked not-modified fast
// path), reassemble them into the group view, and run the merged estimators
// locally with the same deterministic seed-stream discipline.
//
// A distributed estimate is therefore bit-equal to the in-process one: for
// the same vectors, options and estimator seeds, every algorithm returns
// exactly what an equivalent ShardedCollection returns, draw for draw (the
// remote_test property suite pins this at S ∈ {1, 4}). The guarantee rests
// on two proven equivalences: a snapshot restored from its wire encoding is
// sampling-equivalent to the original (the durability layer's restore
// property), and per-shard ingest publishes the same buckets the in-process
// writer publishes.
//
// Failure semantics: any shard failing — timeout, transport loss after
// retries, or protocol violation — fails the whole read with a typed error
// (ErrShardUnavailable, ErrShardProtocol, or a server rejection). There are
// no partial estimates over a subset of shards. All methods are safe for
// unsynchronized concurrent use.
type RemoteCollection struct {
	opt     Options
	family  lsh.Family
	sim     core.SimFunc
	clients []*shardrpc.Client
	closed  atomic.Bool

	seedCtr atomic.Uint64

	// Per-shard snapshot cache: versions are monotone per shard, so cached
	// entries only ever advance, and an unchanged shard costs one
	// not-modified round trip instead of a snapshot transfer.
	mu    sync.Mutex
	snaps []*lsh.Snapshot
}

// Connect dials the shard servers and performs the handshakes. Options
// follow the adopt-or-assert rule of Open: hashing fields (K, Tables, Seed,
// Measure) left zero adopt the servers' values, non-zero fields are
// assertions that must match every server (ErrInvalidOptions otherwise).
// Shards, if set, must equal len(addrs). Dir and Float32Signing are
// rejected — a remote collection has no local store, and the float32
// signing lane does not travel with snapshots. All servers must share one
// hashing identity; a mismatch reports ErrInvalidOptions naming the shard.
func Connect(addrs []string, opt Options, ropts ...RemoteOption) (*RemoteCollection, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: Connect needs at least one shard address", ErrInvalidOptions)
	}
	if len(addrs) > lsh.MaxShards {
		return nil, fmt.Errorf("%w: %d shard addresses exceed the maximum %d", ErrInvalidOptions, len(addrs), lsh.MaxShards)
	}
	if len(addrs) > 1 && bits.UintSize < 64 {
		return nil, fmt.Errorf("lshjoin: more than one shard requires a 64-bit platform (vector ids pack shard and local index into one int)")
	}
	opt, err := opt.validated()
	if err != nil {
		return nil, err
	}
	if opt.Dir != "" {
		return nil, fmt.Errorf("%w: Dir is not supported on a remote collection (durability lives on the shard servers)", ErrInvalidOptions)
	}
	if opt.Float32Signing {
		return nil, fmt.Errorf("%w: Float32Signing is not supported on a remote collection (the signing lane does not travel with snapshots)", ErrInvalidOptions)
	}
	if opt.Shards != 0 && opt.Shards != len(addrs) {
		return nil, fmt.Errorf("%w: Shards = %d but %d shard addresses were given", ErrInvalidOptions, opt.Shards, len(addrs))
	}
	var ro remoteOpts
	for _, apply := range ropts {
		apply(&ro)
	}
	clients := make([]*shardrpc.Client, 0, len(addrs))
	closeAll := func() {
		for _, c := range clients {
			c.Close()
		}
	}
	for _, addr := range addrs {
		c, err := shardrpc.Dial(addr, ro.rpc)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("lshjoin: shard %d (%s): %w", len(clients), addr, err)
		}
		clients = append(clients, c)
	}
	h0 := clients[0].Hello()
	for s, c := range clients {
		if h := c.Hello(); h.Family != h0.Family || h.K != h0.K || h.Ell != h0.Ell {
			closeAll()
			return nil, fmt.Errorf("%w: shard %d (%s) hashes with %+v k=%d ℓ=%d, shard 0 with %+v k=%d ℓ=%d",
				ErrInvalidOptions, s, c.Addr(), h.Family, h.K, h.Ell, h0.Family, h0.K, h0.Ell)
		}
	}
	if opt, err = adoptHello(opt, h0, len(addrs)); err != nil {
		closeAll()
		return nil, err
	}
	family, sim, err := familyFor(opt)
	if err != nil {
		closeAll()
		return nil, err
	}
	return &RemoteCollection{
		opt:     opt,
		family:  family,
		sim:     sim,
		clients: clients,
		snaps:   make([]*lsh.Snapshot, len(addrs)),
	}, nil
}

// adoptHello folds the servers' hashing identity into opt under the
// adopt-or-assert rule (the network analogue of the store reconcile).
func adoptHello(opt Options, h shardrpc.Hello, shards int) (Options, error) {
	measure, err := measureOfSpec(h.Family)
	if err != nil {
		return opt, err
	}
	if opt.K != 0 && opt.K != h.K {
		return opt, fmt.Errorf("%w: K = %d but the shard servers hash with K = %d", ErrInvalidOptions, opt.K, h.K)
	}
	if opt.Tables != 0 && opt.Tables != h.Ell {
		return opt, fmt.Errorf("%w: Tables = %d but the shard servers hash with %d", ErrInvalidOptions, opt.Tables, h.Ell)
	}
	if opt.Seed != 0 && opt.Seed != h.Family.Seed {
		return opt, fmt.Errorf("%w: Seed = %d but the shard servers hash with %d", ErrInvalidOptions, opt.Seed, h.Family.Seed)
	}
	if opt.Measure != measure && opt.Measure != CosineSimilarity {
		return opt, fmt.Errorf("%w: Measure conflicts with the shard servers' hash family %q", ErrInvalidOptions, h.Family.Name)
	}
	opt.K, opt.Tables, opt.Seed, opt.Measure, opt.Shards = h.K, h.Ell, h.Family.Seed, measure, shards
	return opt, nil
}

// measureOfSpec maps a served family spec back to the public Measure.
func measureOfSpec(spec lsh.FamilySpec) (Measure, error) {
	switch spec.Name {
	case "simhash":
		return CosineSimilarity, nil
	case "minhash":
		return JaccardSimilarity, nil
	}
	return 0, fmt.Errorf("lshjoin: shard servers hash with unsupported family %q: %w", spec.Name, ErrShardProtocol)
}

// Close closes every shard connection. The shard servers themselves — and
// any durable state they hold — are unaffected. Idempotent.
func (c *RemoteCollection) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	var first error
	for _, cl := range c.clients {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Shards returns the shard count S (one per address).
func (c *RemoteCollection) Shards() int { return len(c.clients) }

// K returns the per-table hash function count.
func (c *RemoteCollection) K() int { return c.opt.K }

// Tables returns the number of LSH tables ℓ.
func (c *RemoteCollection) Tables() int { return c.opt.Tables }

// ShardOf returns the home shard encoded in a vector id returned by Insert.
func (c *RemoteCollection) ShardOf(id int) int {
	s, _ := lsh.SplitGroupID(int64(id))
	return s
}

// fetchShard fetches shard s's current snapshot, reusing have when the
// shard answers not-modified, and validates the decoded state against the
// pinned hashing identity.
func (c *RemoteCollection) fetchShard(s int, have *lsh.Snapshot) (*lsh.Snapshot, error) {
	haveVer := uint64(0)
	if have != nil {
		haveVer = have.Version()
	}
	version, blob, notMod, err := c.clients[s].Snapshot(haveVer)
	if err != nil {
		return nil, err
	}
	if notMod {
		if have == nil || version != haveVer {
			return nil, fmt.Errorf("shard answered not-modified for version %d we do not hold: %w", version, ErrShardProtocol)
		}
		return have, nil
	}
	idx, err := persist.DecodeSnapshot(blob)
	if err != nil {
		return nil, fmt.Errorf("snapshot blob: %v: %w", err, ErrShardProtocol)
	}
	snap := idx.Current()
	if snap.Version() != version {
		return nil, fmt.Errorf("snapshot blob carries version %d, response header %d: %w", snap.Version(), version, ErrShardProtocol)
	}
	if snap.Family() != c.family || snap.K() != c.opt.K || snap.L() != c.opt.Tables {
		return nil, fmt.Errorf("snapshot blob hashes with a different identity: %w", ErrShardProtocol)
	}
	return snap, nil
}

// capture fetches the current shard-snapshot vector — the remote analogue
// of ShardGroup.Capture. Shards are fetched in parallel; unchanged shards
// cost one not-modified round trip. Any shard failing fails the capture
// with that shard's typed error.
func (c *RemoteCollection) capture() (*lsh.GroupSnapshot, error) {
	S := len(c.clients)
	c.mu.Lock()
	have := make([]*lsh.Snapshot, S)
	copy(have, c.snaps)
	c.mu.Unlock()

	snaps := make([]*lsh.Snapshot, S)
	errs := make([]error, S)
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			snaps[s], errs[s] = c.fetchShard(s, have[s])
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("lshjoin: shard %d (%s): %w", s, c.clients[s].Addr(), err)
		}
	}
	// Advance the cache, per shard and forward only: shard versions are
	// monotone, so concurrent captures can only race each other toward
	// newer versions, never adopt an older snapshot over a newer one.
	c.mu.Lock()
	for s, snap := range snaps {
		if c.snaps[s] == nil || snap.Version() > c.snaps[s].Version() {
			c.snaps[s] = snap
		}
	}
	c.mu.Unlock()
	gs, err := lsh.NewGroupSnapshot(snaps)
	if err != nil {
		return nil, fmt.Errorf("lshjoin: %v: %w", err, ErrShardProtocol)
	}
	return gs, nil
}

// N returns the total vector count across shards (including every
// acknowledged Insert).
func (c *RemoteCollection) N() (int, error) {
	gs, err := c.capture()
	if err != nil {
		return 0, err
	}
	return gs.N(), nil
}

// Version returns the summed per-shard publish version, as
// ShardedCollection.Version does. For the vector itself see ShardVersions.
func (c *RemoteCollection) Version() (uint64, error) {
	vers, err := c.ShardVersions()
	if err != nil {
		return 0, err
	}
	var v uint64
	for _, sv := range vers {
		v += sv
	}
	//vsjlint:ignore versiondominance monotone change counter per its doc; dominance callers use ShardVersions
	return v, nil
}

// ShardVersions returns the per-shard publish versions of the latest
// captured shard-snapshot vector.
func (c *RemoteCollection) ShardVersions() ([]uint64, error) {
	gs, err := c.capture()
	if err != nil {
		return nil, err
	}
	return gs.Versions(), nil
}

// IndexBytes estimates the total LSH index size across shards using the
// paper's §6.3 accounting.
func (c *RemoteCollection) IndexBytes() (int64, error) {
	gs, err := c.capture()
	if err != nil {
		return 0, err
	}
	return gs.SizeBytes(), nil
}

// PairsSharingBucket returns the merged N_H of table 0 — per-shard intra
// counts plus cross-shard bipartite counts, exactly the N_H a single index
// over the union corpus would maintain.
func (c *RemoteCollection) PairsSharingBucket() (int64, error) {
	gs, err := c.capture()
	if err != nil {
		return 0, err
	}
	ms, err := core.NewMergedStratum(gs, 0)
	if err != nil {
		return 0, fmt.Errorf("lshjoin: %w", err)
	}
	return ms.NH(), nil
}

// Vector returns the vector with the given id (as returned by Insert).
func (c *RemoteCollection) Vector(id int) (Vector, error) {
	gs, err := c.capture()
	if err != nil {
		return Vector{}, err
	}
	s, local := lsh.SplitGroupID(int64(id))
	if s < 0 || s >= gs.S() || local < 0 || local >= gs.Snap(s).N() {
		return Vector{}, fmt.Errorf("lshjoin: no vector with id %d", id)
	}
	return gs.Snap(s).Data()[local], nil
}

// Insert routes v to its home shard — the same pure content-key routing an
// in-process ShardedCollection uses — and streams it there, returning the
// shard-encoded vector id. Inserts are not replayed after transient
// failures that may have reached the server; on error the caller knows the
// insert may or may not have been applied.
func (c *RemoteCollection) Insert(v Vector) (int, error) {
	s := lsh.RouteVector(v, len(c.clients))
	first, _, err := c.clients[s].Ingest([]Vector{v})
	if err != nil {
		return 0, fmt.Errorf("lshjoin: shard %d (%s): %w", s, c.clients[s].Addr(), err)
	}
	return int(lsh.GroupID(s, first)), nil
}

// InsertBatch routes each vector to its home shard, streams the per-shard
// runs, and returns per-vector ids aligned with vs — the id assignment an
// in-process ShardedCollection.InsertBatch makes for the same vectors.
func (c *RemoteCollection) InsertBatch(vs []Vector) ([]int, error) {
	if len(vs) == 0 {
		return nil, nil
	}
	S := len(c.clients)
	ids := make([]int, len(vs))
	if S == 1 {
		first, _, err := c.clients[0].Ingest(vs)
		if err != nil {
			return nil, fmt.Errorf("lshjoin: shard 0 (%s): %w", c.clients[0].Addr(), err)
		}
		for i := range ids {
			ids[i] = first + i
		}
		return ids, nil
	}
	parts := make([][]Vector, S)
	home := make([]int, len(vs))
	for i, v := range vs {
		s := lsh.RouteVector(v, S)
		home[i] = s
		parts[s] = append(parts[s], v)
	}
	first := make([]int, S)
	for s, part := range parts {
		if len(part) == 0 {
			continue
		}
		f, _, err := c.clients[s].Ingest(part)
		if err != nil {
			return nil, fmt.Errorf("lshjoin: shard %d (%s): %w", s, c.clients[s].Addr(), err)
		}
		first[s] = f
	}
	next := first
	for i := range vs {
		s := home[i]
		ids[i] = int(lsh.GroupID(s, next[s]))
		next[s]++
	}
	return ids, nil
}

// Estimator constructs the requested algorithm over the current distributed
// state: per-shard snapshots are fetched (or version-validated against the
// cache), reassembled into the group view, and the merged estimator binds
// to it — exactly the construction an in-process ShardedCollection
// performs, including the seed stream, so estimates are draw-for-draw
// bit-equal for equal data, options and estimator seeds.
func (c *RemoteCollection) Estimator(algo Algorithm, opts ...EstimatorOption) (Estimator, error) {
	var o estOpts
	for _, opt := range opts {
		opt(&o)
	}
	if o.seed == 0 {
		o.seed = c.nextSeed()
	}
	gs, err := c.capture()
	if err != nil {
		return nil, err
	}
	inner, err := buildEstimator(gs, c.family, c.sim, c.opt, algo, o)
	if err != nil {
		return nil, err
	}
	return &seeded{inner: inner, rng: xrand.New(o.seed)}, nil
}

// EstimateJoinSize estimates the join size with merged LSH-SS under the
// paper's default parameters. Each call draws fresh randomness; use
// Estimator for reproducible or repeated estimation.
func (c *RemoteCollection) EstimateJoinSize(tau float64) (float64, error) {
	est, err := c.Estimator(AlgoLSHSS)
	if err != nil {
		return 0, err
	}
	return est.Estimate(tau)
}

// EstimateJoinSizeCurve estimates the selectivity curve J(τ) for a grid of
// thresholds from one shared merged-LSH-SS sampling pass.
func (c *RemoteCollection) EstimateJoinSizeCurve(taus []float64) ([]float64, error) {
	gs, err := c.capture()
	if err != nil {
		return nil, err
	}
	inner, err := core.NewMergedLSHSS(gs, c.sim)
	if err != nil {
		return nil, err
	}
	return inner.EstimateCurve(taus, xrand.New(c.nextSeed()))
}

// SearchSimilar returns ids of indexed vectors with sim(v, ·) ≥ tau among
// the LSH candidates of v, searching every shard's fetched snapshot.
// Results use shard-encoded ids in shard order, identical to
// ShardedCollection.SearchSimilar over the same data.
func (c *RemoteCollection) SearchSimilar(v Vector, tau float64) ([]int, error) {
	gs, err := c.capture()
	if err != nil {
		return nil, err
	}
	var out []int
	for s := 0; s < gs.S(); s++ {
		for _, local := range gs.Snap(s).Search(v, tau) {
			out = append(out, int(lsh.GroupID(s, int(local))))
		}
	}
	return out, nil
}

// ExactJoinSize computes the true join size over the fetched union corpus
// (inverted-index joiner for cosine, brute force otherwise). The corpus
// ships once per changed shard and the count runs locally.
func (c *RemoteCollection) ExactJoinSize(tau float64) (int64, error) {
	gs, err := c.capture()
	if err != nil {
		return 0, err
	}
	if c.opt.Measure != CosineSimilarity {
		data := gs.Data()
		var count int64
		for i := range data {
			for j := i + 1; j < len(data); j++ {
				if c.sim(data[i], data[j]) >= tau {
					count++
				}
			}
		}
		return count, nil
	}
	return exactjoin.NewJoiner(gs.Data()).CountAt(tau)
}

// VerifyShardSampling cross-checks the reconstruction of shard s: it draws
// draws weighted pairs from table t on the server and the same draws from
// the locally reconstructed snapshot with one shared seed, and reports any
// disagreement as ErrShardProtocol. Agreement is exactly the restore
// draw-for-draw guarantee, observed end to end over the wire. The check
// retries once if the shard publishes between the fetch and the sample.
func (c *RemoteCollection) VerifyShardSampling(s, t, draws int, seed uint64) error {
	if s < 0 || s >= len(c.clients) {
		return fmt.Errorf("lshjoin: shard %d out of range [0, %d)", s, len(c.clients))
	}
	for attempt := 0; ; attempt++ {
		gs, err := c.capture()
		if err != nil {
			return err
		}
		if t < 0 || t >= gs.L() {
			return fmt.Errorf("lshjoin: table %d out of range [0, %d)", t, gs.L())
		}
		snap := gs.Snap(s)
		version, pairs, err := c.clients[s].SampleBatch(t, draws, seed)
		if err != nil {
			return fmt.Errorf("lshjoin: shard %d (%s): %w", s, c.clients[s].Addr(), err)
		}
		if version != snap.Version() {
			if attempt == 0 {
				continue // the shard published between the two calls; refetch
			}
			return fmt.Errorf("lshjoin: shard %d keeps publishing during verification (snapshot v%d, sample v%d)", s, snap.Version(), version)
		}
		rng := xrand.New(seed)
		tab := snap.Table(t)
		for d := 0; d < draws; d++ {
			i, j, ok := tab.SamplePair(rng)
			if !ok {
				if d != len(pairs) {
					return fmt.Errorf("lshjoin: shard %d table %d: local stream ends at draw %d, server sent %d pairs: %w", s, t, d, len(pairs), ErrShardProtocol)
				}
				return nil
			}
			if d >= len(pairs) || int32(i) != pairs[d][0] || int32(j) != pairs[d][1] {
				return fmt.Errorf("lshjoin: shard %d table %d draw %d: local (%d, %d) disagrees with server: %w", s, t, d, i, j, ErrShardProtocol)
			}
		}
		if len(pairs) != draws {
			return fmt.Errorf("lshjoin: shard %d table %d: server sent %d pairs for %d draws: %w", s, t, len(pairs), draws, ErrShardProtocol)
		}
		return nil
	}
}

// nextSeed derives a fresh deterministic seed for estimator construction —
// the same stream as ShardedCollection.nextSeed, which is what makes
// unseeded remote estimates reproduce in-process ones call for call.
func (c *RemoteCollection) nextSeed() uint64 {
	return xrand.Mix2(c.opt.Seed^0xE57AB1E, c.seedCtr.Add(1))
}
