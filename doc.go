// Package lshjoin estimates the size of vector similarity self-joins and
// cross-joins using Locality Sensitive Hashing, implementing Lee, Ng and
// Shim, "Similarity Join Size Estimation using Locality Sensitive Hashing"
// (PVLDB 4(6), 2011).
//
// Given a collection of sparse vectors and a cosine (or Jaccard) similarity
// threshold τ, the package answers "how many pairs have similarity ≥ τ?"
// quickly and reliably across the whole threshold range — including the very
// high thresholds (selectivity ~1e-7 %) where plain random sampling
// fluctuates between zero and enormous overestimates. The headline
// algorithm, LSH-SS, stratifies the pair space by an LSH table into
// co-bucketed pairs (sampled directly, with bucket-count weighting) and
// everything else (Lipton-style adaptive sampling with a safe lower bound),
// needing only bucket counts on top of a standard LSH index.
//
// # Quick start
//
//	vecs, _ := lshjoin.GenerateDataset(lshjoin.DatasetDBLP, 10000, 42)
//	coll, _ := lshjoin.New(vecs, lshjoin.Options{})
//	est, _ := coll.EstimateJoinSize(0.8) // LSH-SS with paper defaults
//	exact, _ := coll.ExactJoinSize(0.8)  // inverted-index ground truth
//
// Beyond LSH-SS the package ships every algorithm of the paper's evaluation
// (RS(pop), RS(cross), J_U, LSH-S, LSH-SS(D), the adapted Lattice Counting
// baseline, the multi-table median and virtual-bucket estimators, and the
// non-self-join variants), an exact similarity join for ground truth, and a
// benchmark harness regenerating every table and figure of the paper — see
// DESIGN.md and EXPERIMENTS.md.
//
// # Concurrency
//
// A Collection serves reads while it ingests. Insert and InsertBatch
// append to a pending delta; reads run against immutable snapshots that
// are published with a single atomic pointer swap, so Estimate,
// SearchSimilar, ExactJoinSize and JoinPairs never block each other and
// never observe a half-applied mutation. Estimators bind to the snapshot
// current at their construction and keep answering over that version
// forever — there is no staleness error and nothing to rebuild; construct
// a new estimator (cheap) to observe newer data. All Collection methods
// are safe for unsynchronized concurrent use.
//
// Publication is incremental: each table's bucket sequence and sampling
// weights live in a persistent (path-copying) Fenwick weight index that
// consecutive versions share structurally, so publishing a d-vector delta
// costs O(d · log #buckets) per table — independent of how many buckets
// the tables hold — instead of an O(#buckets) prefix-sum rebuild. That
// makes per-insert publication affordable: set Options.PublishEvery to 1
// (or any delta size) and Insert cuts a fresh lock-free version under
// that policy; leave it 0 to publish lazily on the next read.
//
// For write-heavy serving, NewSharded partitions the key space across
// Options.Shards independent index shards. Routing is consistent
// key-hashing over vector content, so a vector's home shard is a pure
// function of its value; inserts on different shards never contend, and
// each shard publishes its own versions under the same incremental
// machinery. Reads capture a shard-snapshot vector (one atomic pointer
// load per shard) and estimators merge the per-shard statistics exactly:
// bucket keys are shard-invariant, so the union stratum H decomposes into
// per-shard N_H sums plus cross-shard bipartite bucket matchings, and
// every algorithm of the paper answers over shards. A ShardedCollection
// with Shards == 1 is guaranteed draw-for-draw identical to a Collection
// built from the same vectors and options.
//
// General (non-self) joins serve the same way. A CrossJoin is a live
// object: both sides accept InsertLeft / InsertRight (and batch forms)
// concurrently with estimates, Options.PublishEvery applies per side and
// per shard, and Options.Shards partitions each side across independent
// index shards. Estimates capture a pair of shard-snapshot vectors and
// stratify by the merged bipartite bucket matching of App. B.2.2 — the
// S_left·S_right per-shard-pair matchings partition the cross stratum H,
// so N_H, M and membership equal the unsharded union exactly. A CrossJoin
// with Shards == 1 is guaranteed draw-for-draw identical to the static
// single-snapshot cross join of earlier releases: same indexes, same
// estimator seed stream, same results (the seed-stream golden test pins
// this). Multi-table cross joins are rejected with an error — the general
// estimator stratifies by the single bipartite matching.
//
// # Durability
//
// Set Options.Dir to make a Collection or ShardedCollection crash-safe.
// New creates a store in that directory (ErrStoreExists if one is already
// there); Open and OpenSharded recover one, deriving K, Tables, Seed and
// Measure from disk — pass zero Options fields to adopt the stored values,
// or set them as assertions that must match (ErrInvalidOptions otherwise).
//
// The store is a checkpoint plus a delta log. A checkpoint is a versioned,
// section-checksummed (CRC32C) snapshot file — family parameters, bucket
// sequences in first-appearance order, vectors — written to a temp file,
// fsynced, atomically renamed, and named by a MANIFEST that is itself
// replaced atomically, so a checkpoint either fully exists or does not
// exist at all. Between checkpoints every Insert appends a length-prefixed,
// checksummed record to the log; records buffer in memory and are flushed
// and fsynced at publish boundaries, making the published version the unit
// of durability: once a publish returns, that version survives any crash.
//
// Checkpoint rotation runs off the publish path. Once the delta log grows
// past Options.CheckpointBytes (default 4 MiB), publish switches to a
// fresh log file and hands the accumulated version to a per-store
// background checkpointer, so the publish itself only appends and fsyncs —
// its latency stays flat no matter how large the snapshot has grown. A
// rotation failure surfaces as a sticky store error on the next publish,
// and Close drains the checkpointer before writing the final checkpoint.
//
// Recovery loads the newest checkpoint and replays the log's valid prefix.
// A torn tail — a record half-written when the machine died — is detected
// by its checksum, truncated, and never served; the collection reopens at
// the last durably published version, deep-equal to what readers saw then,
// down to draw-for-draw identical estimator streams. Damage that cannot be
// a torn tail (a flipped byte mid-file, version skew between files, a
// missing manifest over live data) refuses to load with ErrCorruptStore
// rather than guessing. A sharded store keeps one such sub-store per shard
// under a group manifest, and every shard recovers independently.
//
// Cross joins persist the same way: NewCrossJoin with Options.Dir lays out
// one group store per side under a single CROSS manifest, written last at
// creation so the two-sided store either fully exists or not at all.
// OpenCrossJoin recovers both sides to a componentwise-consistent pair of
// published version vectors and the reopened join is draw-for-draw
// identical to the in-memory pipeline at those versions; CrossJoin.Close
// flushes and checkpoints both sides and stamps their final version
// vectors into the manifest. The crash-consistency property tests
// (internal/lsh/persist) drive every write — single-store, mid-rotation
// background-checkpoint, and two-sided cross workloads — through an
// injectable filesystem and check exactly this contract at every injection
// point. See examples/durable for the full lifecycle.
//
// # Network serving
//
// The sharded pipeline also runs across processes. A ShardServer owns one
// shard — an index, optionally durable via Options.Dir — and serves a small
// length-prefixed binary protocol over TCP (DESIGN.md documents the wire
// format): streamed ingest, snapshot fetches with a version-checked
// not-modified fast path, summary digests, and server-side sample batches.
// Connect dials S such servers and returns a RemoteCollection mirroring
// ShardedCollection's estimate surface: inserts route to their home shard
// with the same content hashing, reads fetch per-shard snapshots in
// parallel (cached by version), reassemble the group view, and run the
// merged estimators locally under the identical seed-stream discipline.
// A distributed estimate is therefore bit-equal — not approximately equal —
// to the in-process sharded one for the same vectors, options and
// estimator seeds; a property test pins this over real sockets for all ten
// algorithms, and VerifyShardSampling cross-checks a live server's sample
// stream draw for draw.
//
// Failures are typed and bounded: a shard that cannot be reached within
// the call timeout (after deterministic-backoff retries) fails the read
// with ErrShardUnavailable, a malformed or mismatched response fails it
// with ErrShardProtocol, and there are never partial estimates over a
// subset of shards. Ingest is not replayed once its bytes may have reached
// a server. See cmd/vsjserve (serve / coordinate / loadgen; the loadgen
// baseline is tracked in BENCH_serve.json) and examples/netserve.
//
// # Performance
//
// Index construction and bulk loading run through a batched signature
// engine (internal/lsh/engine.go): keyed gaussian / rank rows are
// materialized once per distinct corpus dimension instead of once per
// vector, bucket keys are packed machine words whenever k·Bits() ≤ 64, and
// signing parallelizes across cores. Bucket insertion is shard-parallel
// (internal/lsh/build.go): keys scatter across fixed key-hash shards whose
// buckets build independently and merge into the canonical first-appearance
// order, byte-identical to a serial build at any GOMAXPROCS. Estimator
// sampling (LSH-SS's SampleH and SampleL, and the multi-table median) fans
// out across deterministic RNG-split shards, so estimates are bit-for-bit
// reproducible for a given seed at any GOMAXPROCS.
//
// The signing inner loops are vectorized on amd64: AVX2 multiply-add
// kernels accumulate four projection rows per pass, and the keyed gaussian
// row fill runs through a fused hash-prep + table-interpolation kernel pair
// (internal/kernel). Every kernel has a portable Go reference used on other
// architectures or under `-tags purego`, and equivalence tests pin the two
// bit-for-bit, so signatures — and therefore buckets, snapshots, and
// estimates — never depend on the build. Projections for all ℓ tables are
// cached in one ℓ·k-wide dimension-major panel (one vocabulary pass per
// corpus instead of ℓ), and builds stream that panel in column blocks
// bounded by Options.SignPanelBytes, so signing memory stays flat however
// large the vocabulary grows. Options.Float32Signing switches the
// projection cache and accumulators to a float32 lane — half the memory
// bandwidth on wide corpora, at the cost of signatures that differ from
// (but are statistically equivalent to) the float64 lane's.
//
// Run `vsjbench -perf` to regenerate the BENCH_lsh.json hot-path timings
// tracked in the repository root, including a mixed Estimate+Insert serving
// benchmark and the fused / panel-streamed / float32 signing paths.
//
// # Invariant checking
//
// The correctness rules the compiler cannot see — VEX-only assembly, atomic
// estimator seed streams, componentwise version-vector dominance, the
// persist lock order, sentinel-error comparison via errors.Is, length-guarded
// decoders, fault-injectable file I/O — are machine-checked by the static
// analyzer suite in cmd/vsjlint (internal/analysis), which CI runs over
// every package; see DESIGN.md's "Static analysis" section.
package lshjoin
