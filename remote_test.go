package lshjoin

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"lshjoin/internal/shardrpc"
)

// startShardServers spins up S in-memory shard servers on loopback sharing
// one hashing identity and returns their addresses.
func startShardServers(t *testing.T, S int, opt Options) []string {
	t.Helper()
	addrs := make([]string, S)
	for s := 0; s < S; s++ {
		srv, err := NewShardServer(opt)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[s] = ln.Addr().String()
		errc := make(chan error, 1)
		go func() { errc <- srv.Serve(ln) }()
		t.Cleanup(func() {
			if err := srv.Close(); err != nil {
				t.Errorf("close shard server: %v", err)
			}
			if err := <-errc; err != nil {
				t.Errorf("serve: %v", err)
			}
		})
	}
	return addrs
}

// fastRemote keeps degradation tests quick: short timeouts, no retries.
func fastRemote() []RemoteOption {
	return []RemoteOption{
		WithDialTimeout(2 * time.Second),
		WithCallTimeout(300 * time.Millisecond),
		WithRetryPolicy(0, time.Millisecond),
	}
}

// The distributed draw-for-draw property, end to end over the wire: a
// RemoteCollection over S shard servers answers bit-equal to an in-process
// ShardedCollection with the same options and vectors — ids, every
// algorithm's seeded estimates, the unseeded seed stream, curves, searches
// and exact joins — at S = 1 and S = 4, for both measures. Publish versions
// are NOT compared: a Build-constructed shard sits at version 1 where an
// ingest-loaded one sits at 2, and estimates are content-determined either
// way.
func TestRemoteMatchesShardedDrawForDraw(t *testing.T) {
	for _, S := range []int{1, 4} {
		for _, measure := range []Measure{CosineSimilarity, JaccardSimilarity} {
			t.Run(fmt.Sprintf("s=%d measure=%d", S, measure), func(t *testing.T) {
				vecs := fixtureVectors(t, 460)
				opt := Options{K: 6, Tables: 3, Seed: 5, Measure: measure}
				addrs := startShardServers(t, S, opt)
				rem, err := Connect(addrs, opt)
				if err != nil {
					t.Fatal(err)
				}
				defer rem.Close()
				sopt := opt
				sopt.Shards = S
				shrd, err := NewSharded(vecs[:400], sopt)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := rem.InsertBatch(vecs[:400]); err != nil {
					t.Fatal(err)
				}
				for i := 400; i < 440; i++ {
					a := shrd.Insert(vecs[i])
					b, err := rem.Insert(vecs[i])
					if err != nil {
						t.Fatal(err)
					}
					if a != b {
						t.Fatalf("insert %d: id %d vs %d", i, a, b)
					}
					if rem.ShardOf(b) != shrd.ShardOf(a) {
						t.Fatalf("insert %d: shard %d vs %d", i, rem.ShardOf(b), shrd.ShardOf(a))
					}
				}
				ca := shrd.InsertBatch(vecs[440:])
				cb, err := rem.InsertBatch(vecs[440:])
				if err != nil {
					t.Fatal(err)
				}
				for i := range ca {
					if ca[i] != cb[i] {
						t.Fatalf("batch id %d: %d vs %d", i, ca[i], cb[i])
					}
				}
				n, err := rem.N()
				if err != nil {
					t.Fatal(err)
				}
				if n != shrd.N() {
					t.Fatalf("N %d vs %d", n, shrd.N())
				}
				nh, err := rem.PairsSharingBucket()
				if err != nil {
					t.Fatal(err)
				}
				if nh != shrd.PairsSharingBucket() {
					t.Fatalf("N_H %d vs %d", nh, shrd.PairsSharingBucket())
				}
				ib, err := rem.IndexBytes()
				if err != nil {
					t.Fatal(err)
				}
				if ib != shrd.IndexBytes() {
					t.Fatalf("IndexBytes %d vs %d", ib, shrd.IndexBytes())
				}
				for _, algo := range Algorithms() {
					for _, tau := range []float64{0.6, 0.9} {
						ea, err := shrd.Estimator(algo, WithEstimatorSeed(41))
						if err != nil {
							t.Fatalf("%s: %v", algo, err)
						}
						eb, err := rem.Estimator(algo, WithEstimatorSeed(41))
						if err != nil {
							t.Fatalf("%s remote: %v", algo, err)
						}
						va, err := ea.Estimate(tau)
						if err != nil {
							t.Fatalf("%s: %v", algo, err)
						}
						vb, err := eb.Estimate(tau)
						if err != nil {
							t.Fatalf("%s remote: %v", algo, err)
						}
						if va != vb {
							t.Fatalf("%s tau=%v: %v vs %v", algo, tau, va, vb)
						}
					}
				}
				// The unseeded seed streams align too: the curve call consumes
				// draw 1 on each side, the estimator after it draw 2.
				taus := []float64{0.5, 0.7, 0.9}
				curveA, err := shrd.EstimateJoinSizeCurve(taus)
				if err != nil {
					t.Fatal(err)
				}
				curveB, err := rem.EstimateJoinSizeCurve(taus)
				if err != nil {
					t.Fatal(err)
				}
				for i := range taus {
					if curveA[i] != curveB[i] {
						t.Fatalf("curve[%d]: %v vs %v", i, curveA[i], curveB[i])
					}
				}
				ea, err := shrd.Estimator(AlgoLSHSS)
				if err != nil {
					t.Fatal(err)
				}
				eb, err := rem.Estimator(AlgoLSHSS)
				if err != nil {
					t.Fatal(err)
				}
				va, err := ea.Estimate(0.8)
				if err != nil {
					t.Fatal(err)
				}
				vb, err := eb.Estimate(0.8)
				if err != nil {
					t.Fatal(err)
				}
				if va != vb {
					t.Fatalf("unseeded LSH-SS: %v vs %v", va, vb)
				}
				xa, err := shrd.ExactJoinSize(0.8)
				if err != nil {
					t.Fatal(err)
				}
				xb, err := rem.ExactJoinSize(0.8)
				if err != nil {
					t.Fatal(err)
				}
				if xa != xb {
					t.Fatalf("exact join %d vs %d", xa, xb)
				}
				for _, q := range []int{0, 17, 399} {
					sa := shrd.SearchSimilar(vecs[q], 0.7)
					sb, err := rem.SearchSimilar(vecs[q], 0.7)
					if err != nil {
						t.Fatal(err)
					}
					if len(sa) != len(sb) {
						t.Fatalf("search %d: %d vs %d results", q, len(sa), len(sb))
					}
					for i := range sa {
						if sa[i] != sb[i] {
							t.Fatalf("search %d result %d: %d vs %d", q, i, sa[i], sb[i])
						}
					}
					v, err := rem.Vector(ca[0])
					if err != nil {
						t.Fatal(err)
					}
					if v.String() != shrd.Vector(ca[0]).String() {
						t.Fatalf("Vector(%d) differs", ca[0])
					}
				}
				// Server-side sampling reproduces the locally reconstructed
				// stream draw for draw — the restore property observed over
				// the wire.
				for s := 0; s < S; s++ {
					if err := rem.VerifyShardSampling(s, 0, 50, 1234); err != nil {
						t.Fatal(err)
					}
				}
				// Shard versions advanced past the cache: the refetch path
				// (not-modified misses) must keep answering equally.
				shrd.InsertBatch(vecs[:30])
				if _, err := rem.InsertBatch(vecs[:30]); err != nil {
					t.Fatal(err)
				}
				ea, err = shrd.Estimator(AlgoLSHSS, WithEstimatorSeed(97))
				if err != nil {
					t.Fatal(err)
				}
				eb, err = rem.Estimator(AlgoLSHSS, WithEstimatorSeed(97))
				if err != nil {
					t.Fatal(err)
				}
				va, err = ea.Estimate(0.8)
				if err != nil {
					t.Fatal(err)
				}
				vb, err = eb.Estimate(0.8)
				if err != nil {
					t.Fatal(err)
				}
				if va != vb {
					t.Fatalf("post-growth LSH-SS: %v vs %v", va, vb)
				}
			})
		}
	}
}

func TestConnectValidation(t *testing.T) {
	addrs := startShardServers(t, 2, Options{K: 6, Tables: 3, Seed: 5})
	if _, err := Connect(nil, Options{}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("no addresses: %v", err)
	}
	if _, err := Connect(addrs, Options{Dir: t.TempDir()}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Dir accepted: %v", err)
	}
	if _, err := Connect(addrs, Options{Float32Signing: true}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Float32Signing accepted: %v", err)
	}
	if _, err := Connect(addrs, Options{Shards: 3}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("shard-count mismatch accepted: %v", err)
	}
	// Assertions against the servers' identity.
	if _, err := Connect(addrs, Options{K: 9}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("wrong K accepted: %v", err)
	}
	if _, err := Connect(addrs, Options{Seed: 11}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("wrong Seed accepted: %v", err)
	}
	if _, err := Connect(addrs, Options{Measure: JaccardSimilarity}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("wrong Measure accepted: %v", err)
	}
	// Zero fields adopt the served identity.
	rem, err := Connect(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	if rem.K() != 6 || rem.Tables() != 3 || rem.Shards() != 2 {
		t.Fatalf("adopted K=%d Tables=%d Shards=%d", rem.K(), rem.Tables(), rem.Shards())
	}
	// Servers disagreeing among themselves are rejected, naming the shard.
	other := startShardServers(t, 1, Options{K: 6, Tables: 3, Seed: 99})
	if _, err := Connect([]string{addrs[0], other[0]}, Options{}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("mixed identities accepted: %v", err)
	}
}

// misbehavingShard proxies requests to a real shard server frame by frame,
// sabotaging every snapshot fetch per mode — so degradation is observed
// through the public Connect/estimate path, not by poking internals.
func misbehavingShard(t *testing.T, backendAddr, mode string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				backend, err := net.Dial("tcp", backendAddr)
				if err != nil {
					return
				}
				defer backend.Close()
				for {
					typ, payload, err := shardrpc.ReadFrame(conn)
					if err != nil {
						return
					}
					if typ != shardrpc.TSnapshot { // handshake, ingest: relay faithfully
						if err := shardrpc.WriteFrame(backend, typ, payload); err != nil {
							return
						}
						rtyp, resp, err := shardrpc.ReadFrame(backend)
						if err != nil {
							return
						}
						if err := shardrpc.WriteFrame(conn, rtyp, resp); err != nil {
							return
						}
						continue
					}
					switch mode {
					case "mute": // swallow the request; let the client time out
						continue
					case "corrupt": // answer with a CRC-flipped frame
						if err := shardrpc.WriteFrame(backend, typ, payload); err != nil {
							return
						}
						rtyp, resp, err := shardrpc.ReadFrame(backend)
						if err != nil {
							return
						}
						frame := shardrpc.AppendFrame(nil, rtyp, resp)
						frame[len(frame)-2] ^= 0x40
						conn.Write(frame)
						return
					case "short": // half a frame, then hang up
						frame := shardrpc.AppendFrame(nil, typ, payload)
						conn.Write(frame[:len(frame)/2])
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// One misbehaving shard fails the whole read with the right typed error —
// bounded by the call timeout, never a hang, never a partial estimate over
// the healthy shards.
func TestRemoteDegradation(t *testing.T) {
	opt := Options{K: 6, Tables: 2, Seed: 5}
	backends := startShardServers(t, 2, opt)
	cases := []struct {
		mode string
		want error
	}{
		{"mute", ErrShardUnavailable},
		{"corrupt", ErrShardProtocol},
		{"short", ErrShardUnavailable},
	}
	for _, tc := range cases {
		t.Run(tc.mode, func(t *testing.T) {
			bad := misbehavingShard(t, backends[1], tc.mode)
			rem, err := Connect([]string{backends[0], bad}, opt, fastRemote()...)
			if err != nil {
				t.Fatal(err)
			}
			defer rem.Close()
			if _, err := rem.InsertBatch(fixtureVectors(t, 16)); err != nil {
				t.Fatal(err) // ingest itself relays fine in every mode
			}
			start := time.Now()
			v, err := rem.EstimateJoinSize(0.8)
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("degraded estimate took %v", elapsed)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
			if v != 0 {
				t.Fatalf("partial estimate %v served alongside the error", v)
			}
			if _, err := rem.N(); !errors.Is(err, tc.want) {
				t.Fatalf("N error = %v, want %v", err, tc.want)
			}
		})
	}
}

// A durable shard server persists network ingest across restarts: close,
// reopen on the same directory, and the coordinator sees the same corpus.
func TestShardServerDurable(t *testing.T) {
	dir := t.TempDir()
	opt := Options{K: 6, Tables: 2, Seed: 5, Dir: dir}
	vecs := fixtureVectors(t, 64)

	run := func(load bool) int {
		srv, err := NewShardServer(opt)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		errc := make(chan error, 1)
		go func() { errc <- srv.Serve(ln) }()
		rem, err := Connect([]string{ln.Addr().String()}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if load {
			if _, err := rem.InsertBatch(vecs); err != nil {
				t.Fatal(err)
			}
		}
		n, err := rem.N()
		if err != nil {
			t.Fatal(err)
		}
		rem.Close()
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := run(true); n != len(vecs) {
		t.Fatalf("first run N = %d, want %d", n, len(vecs))
	}
	if n := run(false); n != len(vecs) {
		t.Fatalf("recovered N = %d, want %d", n, len(vecs))
	}
}

func TestNewShardServerValidation(t *testing.T) {
	if _, err := NewShardServer(Options{Shards: 2}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Shards=2 accepted: %v", err)
	}
	if _, err := NewShardServer(Options{Float32Signing: true}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Float32Signing accepted: %v", err)
	}
	// Reopening asserts against the stored identity.
	dir := t.TempDir()
	srv, err := NewShardServer(Options{K: 6, Seed: 5, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardServer(Options{K: 9, Dir: dir}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("conflicting K accepted on reopen: %v", err)
	}
}
