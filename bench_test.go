package lshjoin

import (
	"os"
	"sync"
	"testing"

	"lshjoin/internal/experiments"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (DESIGN.md §5 maps IDs to paper artifacts) at bench scale.
// Dataset environments and exact ground truth are cached across iterations,
// so iteration time measures the estimation work itself.
//
// Set LSHJOIN_BENCH_PRINT=1 to print the regenerated tables; cmd/vsjbench
// produces the same rows at full experiment scale.

var benchSuite struct {
	once sync.Once
	s    *experiments.Suite
}

func suiteForBench() *experiments.Suite {
	benchSuite.once.Do(func() {
		benchSuite.s = experiments.NewSuite(experiments.Config{
			DBLPN:   6000,
			NYTN:    2000,
			PubMedN: 3000,
			Reps:    10,
			Seed:    42,
		})
	})
	return benchSuite.s
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	s := suiteForBench()
	runner, ok := experiments.Registry()[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var tables []*experiments.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = runner(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if os.Getenv("LSHJOIN_BENCH_PRINT") != "" {
		if err := experiments.RenderAll(os.Stdout, tables); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Probabilities regenerates Table 1 (exact stratum
// probabilities on DBLP).
func BenchmarkTable1Probabilities(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkJoinSizeTable regenerates the §6.2 join size/selectivity table.
func BenchmarkJoinSizeTable(b *testing.B) { runExperiment(b, "joinsize") }

// BenchmarkFigure2DBLP regenerates Figure 2 (accuracy/variance, DBLP).
func BenchmarkFigure2DBLP(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFigure3NYT regenerates Figure 3 (accuracy/variance, NYT).
func BenchmarkFigure3NYT(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFigure4ImpactOfK regenerates Figure 4 (k sweep at τ = 0.5, 0.8).
func BenchmarkFigure4ImpactOfK(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkSpaceTable regenerates the §6.3 LSH-table-size-vs-k table.
func BenchmarkSpaceTable(b *testing.B) { runExperiment(b, "space") }

// BenchmarkRuntimeTable regenerates the §6.2 runtime comparison.
func BenchmarkRuntimeTable(b *testing.B) { runExperiment(b, "runtime") }

// BenchmarkFigure5DeltaError regenerates Figure 5 (δ sweep, average error).
func BenchmarkFigure5DeltaError(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFigure6DeltaBigErrors regenerates Figure 6 (δ sweep, ≥10× errors).
func BenchmarkFigure6DeltaBigErrors(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFigure7SampleSizeError regenerates Figure 7 (m sweep, avg error).
func BenchmarkFigure7SampleSizeError(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFigure8SampleSizeBigErrors regenerates Figure 8 (m sweep, ≥10×).
func BenchmarkFigure8SampleSizeBigErrors(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkCsSweep regenerates App. C.3 (dampened scale-up factor study).
func BenchmarkCsSweep(b *testing.B) { runExperiment(b, "cs") }

// BenchmarkFigure9PubMed regenerates Figure 9 (PUBMED, k = 5).
func BenchmarkFigure9PubMed(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkTable2AlphaBeta regenerates Table 2 (α/β on NYT and PUBMED).
func BenchmarkTable2AlphaBeta(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkIndexBuild regenerates the App. C.1 build-time table.
func BenchmarkIndexBuild(b *testing.B) { runExperiment(b, "build") }

// Ablation benchmarks (DESIGN.md §7).

func ablationBench(b *testing.B, run func(*experiments.Suite) (*experiments.Table, error)) {
	b.Helper()
	s := suiteForBench()
	var table *experiments.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		table, err = run(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if os.Getenv("LSHJOIN_BENCH_PRINT") != "" {
		if err := table.Render(os.Stdout); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationJUClosedVsNumeric compares Eq. 4 with numeric p(s)^k.
func BenchmarkAblationJUClosedVsNumeric(b *testing.B) {
	ablationBench(b, (*experiments.Suite).AblationJU)
}

// BenchmarkAblationSafeLowerBound quantifies the safe-lower-bound rule.
func BenchmarkAblationSafeLowerBound(b *testing.B) {
	ablationBench(b, (*experiments.Suite).AblationSafeLowerBound)
}

// BenchmarkAblationStratification compares stratified vs uniform sampling at
// an equal budget.
func BenchmarkAblationStratification(b *testing.B) {
	ablationBench(b, (*experiments.Suite).AblationStratification)
}

// BenchmarkAblationMultiTable compares single-table, median, and
// virtual-bucket estimators.
func BenchmarkAblationMultiTable(b *testing.B) {
	ablationBench(b, (*experiments.Suite).AblationMultiTable)
}

// BenchmarkAblationLC places the adapted Lattice Counting baseline.
func BenchmarkAblationLC(b *testing.B) {
	ablationBench(b, (*experiments.Suite).AblationLC)
}

// Micro-benchmarks: per-operation costs of the public API.

func benchCollection(b *testing.B, n int) *Collection {
	b.Helper()
	vecs, err := GenerateDataset(DatasetDBLP, n, 42)
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(vecs, Options{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkEstimateLSHSS measures one LSH-SS estimate (m_H = m_L = n).
func BenchmarkEstimateLSHSS(b *testing.B) {
	c := benchCollection(b, 5000)
	est, err := c.Estimator(AlgoLSHSS, WithEstimatorSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(0.7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateRSPop measures one RS(pop) estimate (m = 1.5n).
func BenchmarkEstimateRSPop(b *testing.B) {
	c := benchCollection(b, 5000)
	est, err := c.Estimator(AlgoRSPop, WithEstimatorSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(0.7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildIndex measures LSH index construction (k = 20, ℓ = 1).
func BenchmarkBuildIndex(b *testing.B) {
	vecs, err := GenerateDataset(DatasetDBLP, 5000, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(vecs, Options{Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactJoin measures the inverted-index exact join over the τ grid.
func BenchmarkExactJoin(b *testing.B) {
	vecs, err := GenerateDataset(DatasetDBLP, 5000, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := New(vecs, Options{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.ExactJoinSize(0.5); err != nil {
			b.Fatal(err)
		}
	}
}
