package lshjoin

import (
	"fmt"

	"lshjoin/internal/core"
	"lshjoin/internal/lc"
	"lshjoin/internal/lsh"
	"lshjoin/internal/xrand"
)

// Algorithm names a join-size estimation algorithm from the paper.
type Algorithm string

// The algorithms of the paper's evaluation (§3–§5, Appendices B–C).
const (
	// AlgoLSHSS is Algorithm 1: stratified sampling with a safe lower bound.
	AlgoLSHSS Algorithm = "lsh-ss"
	// AlgoLSHSSD is LSH-SS with the dampened scale-up c_s = n_L/δ.
	AlgoLSHSSD Algorithm = "lsh-ss-d"
	// AlgoRSPop is uniform random pair sampling (§3.1).
	AlgoRSPop Algorithm = "rs-pop"
	// AlgoRSCross is cross sampling: √m records, all pairs among them (§3.1).
	AlgoRSCross Algorithm = "rs-cross"
	// AlgoLSHS is LSH-S: sample-weighted collision analysis (§4.3).
	AlgoLSHS Algorithm = "lsh-s"
	// AlgoJU is the closed-form uniformity estimator, Equation (4).
	AlgoJU Algorithm = "ju"
	// AlgoJUNumeric is J_U with the family's true collision curve integrated
	// numerically instead of Definition 3's idealized p(s) = s.
	AlgoJUNumeric Algorithm = "ju-numeric"
	// AlgoLC is the adapted Lattice Counting baseline (§3.2).
	AlgoLC Algorithm = "lc"
	// AlgoMedian is the per-table median estimator (App. B.2.1, needs ℓ > 1).
	AlgoMedian Algorithm = "median"
	// AlgoVirtual is the virtual-bucket estimator (App. B.2.1, needs ℓ > 1).
	AlgoVirtual Algorithm = "virtual"
)

// Algorithms lists every available algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgoLSHSS, AlgoLSHSSD, AlgoRSPop, AlgoRSCross, AlgoLSHS,
		AlgoJU, AlgoJUNumeric, AlgoLC, AlgoMedian, AlgoVirtual,
	}
}

// Estimator produces join-size estimates. Implementations returned by
// Collection.Estimator own their random state: calls are reproducible for a
// fixed EstimatorSeed and estimator construction order.
//
// An estimator binds to the collection version current at its construction
// and answers over that immutable snapshot forever: vectors inserted later
// never perturb it, and no staleness error exists. To estimate over newer
// data, construct a new estimator — construction is cheap (no sampling or
// hashing happens until Estimate).
type Estimator interface {
	// Name identifies the algorithm and configuration.
	Name() string
	// Estimate returns an estimate of the join size at tau (always ≥ 0).
	Estimate(tau float64) (float64, error)
}

// EstimatorOption tunes estimator construction.
type EstimatorOption func(*estOpts)

type estOpts struct {
	sampleH int
	sampleL int
	delta   int
	damp    float64 // DampConst factor; 0 = keep algorithm default
	seed    uint64
	support int // LC min support ξ
}

// WithSampleBudget sets the per-stratum sample sizes (LSH-SS: m_H and m_L;
// RS/LSH-S use budgetH as their pair budget m).
func WithSampleBudget(budgetH, budgetL int) EstimatorOption {
	return func(o *estOpts) { o.sampleH, o.sampleL = budgetH, budgetL }
}

// WithDelta sets LSH-SS's answer-size threshold δ.
func WithDelta(delta int) EstimatorOption {
	return func(o *estOpts) { o.delta = delta }
}

// WithDampFactor sets a constant dampened scale-up factor c_s ∈ (0, 1]
// (LSH-SS family only; see App. C.3).
func WithDampFactor(cs float64) EstimatorOption {
	return func(o *estOpts) { o.damp = cs }
}

// WithEstimatorSeed fixes the estimator's random stream for reproducibility.
func WithEstimatorSeed(seed uint64) EstimatorOption {
	return func(o *estOpts) { o.seed = seed }
}

// WithMinSupport sets Lattice Counting's support threshold ξ.
func WithMinSupport(xi int) EstimatorOption {
	return func(o *estOpts) { o.support = xi }
}

// seeded adapts a core estimator to the public interface with owned RNG.
type seeded struct {
	inner core.Estimator
	rng   *xrand.RNG
}

func (s *seeded) Name() string { return s.inner.Name() }

func (s *seeded) Estimate(tau float64) (float64, error) {
	return s.inner.Estimate(tau, s.rng)
}

// ssOptions converts the generic estimator options to LSH-SS options, with
// sample sizes defaulting to n (the paper's choice).
func (o *estOpts) ssOptions(n int) []core.LSHSSOption {
	var ssOpts []core.LSHSSOption
	if o.sampleH > 0 || o.sampleL > 0 {
		h, l := o.sampleH, o.sampleL
		if h <= 0 {
			h = n
		}
		if l <= 0 {
			l = n
		}
		ssOpts = append(ssOpts, core.WithSampleSizes(h, l))
	}
	if o.delta > 0 {
		ssOpts = append(ssOpts, core.WithDelta(o.delta))
	}
	return ssOpts
}

// buildEstimator constructs the requested algorithm over a captured
// shard-snapshot vector — the one algorithm switch behind both Collection
// (which wraps its single snapshot via lsh.SingleSnapshot) and
// ShardedCollection. The merged constructors all delegate to their
// single-snapshot counterparts at S = 1, so the unsharded path is
// draw-for-draw what it always was; at S > 1 the LSH-SS family, the median
// and virtual-bucket estimators sample through the merged per-table weight
// views (per-shard N_H plus cross-shard bipartite N_H — exactly the union
// index's stratum H), J_U and LSH-S consume the exact merged N_H, and the
// sampling baselines and Lattice Counting run over the dense union corpus.
func buildEstimator(gs *lsh.GroupSnapshot, family lsh.Family, sim core.SimFunc, opt Options, algo Algorithm, o estOpts) (core.Estimator, error) {
	ssOpts := o.ssOptions(gs.N())
	var inner core.Estimator
	var err error
	switch algo {
	case AlgoLSHSS:
		if o.damp > 0 {
			ssOpts = append(ssOpts, core.WithDamp(core.DampConst, o.damp))
		}
		inner, err = core.NewMergedLSHSS(gs, sim, ssOpts...)
	case AlgoLSHSSD:
		if o.damp > 0 {
			ssOpts = append(ssOpts, core.WithDamp(core.DampConst, o.damp))
		} else {
			ssOpts = append(ssOpts, core.WithDamp(core.DampAuto, 0))
		}
		inner, err = core.NewMergedLSHSS(gs, sim, ssOpts...)
	case AlgoRSPop:
		inner, err = core.NewRSPop(gs.Data(), sim, o.sampleH)
	case AlgoRSCross:
		inner, err = core.NewRSCross(gs.Data(), sim, o.sampleH)
	case AlgoLSHS:
		inner, err = core.NewMergedLSHS(gs, o.sampleH)
	case AlgoJU:
		inner, err = core.NewMergedJU(gs, core.JUClosedForm)
	case AlgoJUNumeric:
		inner, err = core.NewMergedJU(gs, core.JUNumeric)
	case AlgoLC:
		cfg := lc.Config{K: opt.K, Seed: o.seed}
		if o.support > 0 {
			cfg.MinSupport = o.support
		}
		inner, err = lc.New(gs.Data(), family, cfg)
	case AlgoMedian:
		if opt.Tables < 2 {
			return nil, fmt.Errorf("lshjoin: %s needs Options.Tables > 1 (have %d)", algo, opt.Tables)
		}
		if o.damp > 0 {
			ssOpts = append(ssOpts, core.WithDamp(core.DampConst, o.damp))
		}
		inner, err = core.NewMergedMedianSS(gs, sim, ssOpts...)
	case AlgoVirtual:
		if opt.Tables < 2 {
			return nil, fmt.Errorf("lshjoin: %s needs Options.Tables > 1 (have %d)", algo, opt.Tables)
		}
		if o.damp > 0 {
			ssOpts = append(ssOpts, core.WithDamp(core.DampConst, o.damp))
		}
		inner, err = core.NewMergedVirtualSS(gs, sim, ssOpts...)
	default:
		return nil, fmt.Errorf("lshjoin: unknown algorithm %q", algo)
	}
	if err != nil {
		return nil, fmt.Errorf("lshjoin: %s: %w", algo, err)
	}
	return inner, nil
}

// Estimator constructs the requested algorithm over this collection.
func (c *Collection) Estimator(algo Algorithm, opts ...EstimatorOption) (Estimator, error) {
	var o estOpts
	for _, opt := range opts {
		opt(&o)
	}
	if o.seed == 0 {
		o.seed = c.nextSeed()
	}
	// Bind to the collection version current at construction; the estimator
	// reads this immutable snapshot for its whole lifetime.
	inner, err := buildEstimator(lsh.SingleSnapshot(c.snap()), c.family, c.sim, c.opt, algo, o)
	if err != nil {
		return nil, err
	}
	return &seeded{inner: inner, rng: xrand.New(o.seed)}, nil
}

// Estimator constructs the requested algorithm over this sharded collection.
// Every algorithm of the paper is available over shards; with one shard the
// construction delegates to the single-index path, so estimates are
// draw-for-draw those of an equivalent Collection.
func (c *ShardedCollection) Estimator(algo Algorithm, opts ...EstimatorOption) (Estimator, error) {
	var o estOpts
	for _, opt := range opts {
		opt(&o)
	}
	if o.seed == 0 {
		o.seed = c.nextSeed()
	}
	// Bind to the shard-snapshot vector captured now; the estimator reads
	// these immutable per-shard versions for its whole lifetime.
	inner, err := buildEstimator(c.capture(), c.family, c.sim, c.opt, algo, o)
	if err != nil {
		return nil, err
	}
	return &seeded{inner: inner, rng: xrand.New(o.seed)}, nil
}
