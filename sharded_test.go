package lshjoin

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"lshjoin/internal/exactjoin"
)

func TestNewShardedValidation(t *testing.T) {
	vecs := fixtureVectors(t, 10)
	if _, err := NewSharded(nil, Options{}); err == nil {
		t.Error("empty collection accepted")
	}
	if _, err := NewSharded(vecs[:1], Options{}); err == nil {
		t.Error("single vector accepted")
	}
	if _, err := NewSharded(vecs, Options{Measure: Measure(9)}); err == nil {
		t.Error("unknown measure accepted")
	}
	if _, err := NewSharded(vecs, Options{Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	c, err := NewSharded(vecs, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 4 || c.N() != len(vecs) {
		t.Fatalf("Shards=%d N=%d", c.Shards(), c.N())
	}
}

// The S=1 draw-for-draw property: a single-shard ShardedCollection is
// observably identical to a Collection built with the same options — same
// index state, same estimator streams, same search and join results — across
// a mixed Insert/InsertBatch workload and both measures.
func TestShardedSingleShardDrawForDraw(t *testing.T) {
	for _, measure := range []Measure{CosineSimilarity, JaccardSimilarity} {
		t.Run(fmt.Sprintf("measure=%d", measure), func(t *testing.T) {
			vecs := fixtureVectors(t, 460)
			opt := Options{K: 6, Tables: 3, Seed: 5, Measure: measure, PublishEvery: 7}
			coll, err := New(vecs[:400], opt)
			if err != nil {
				t.Fatal(err)
			}
			shrd, err := NewSharded(vecs[:400], opt) // Shards defaults to 1
			if err != nil {
				t.Fatal(err)
			}
			for i := 400; i < 440; i++ {
				a := coll.Insert(vecs[i])
				b := shrd.Insert(vecs[i])
				if a != b {
					t.Fatalf("insert %d: id %d vs %d", i, a, b)
				}
			}
			ca := coll.InsertBatch(vecs[440:])
			cb := shrd.InsertBatch(vecs[440:])
			if cb[0] != ca {
				t.Fatalf("batch first id %d vs %d", cb[0], ca)
			}
			if coll.N() != shrd.N() || coll.Version() != shrd.Version() {
				t.Fatalf("N %d/%d version %d/%d", coll.N(), shrd.N(), coll.Version(), shrd.Version())
			}
			if coll.PairsSharingBucket() != shrd.PairsSharingBucket() {
				t.Fatalf("N_H %d vs %d", coll.PairsSharingBucket(), shrd.PairsSharingBucket())
			}
			if coll.IndexBytes() != shrd.IndexBytes() {
				t.Fatalf("IndexBytes %d vs %d", coll.IndexBytes(), shrd.IndexBytes())
			}
			for _, algo := range Algorithms() {
				for _, tau := range []float64{0.6, 0.9} {
					ea, err := coll.Estimator(algo, WithEstimatorSeed(41))
					if err != nil {
						t.Fatalf("%s: %v", algo, err)
					}
					eb, err := shrd.Estimator(algo, WithEstimatorSeed(41))
					if err != nil {
						t.Fatalf("%s sharded: %v", algo, err)
					}
					va, err := ea.Estimate(tau)
					if err != nil {
						t.Fatalf("%s: %v", algo, err)
					}
					vb, err := eb.Estimate(tau)
					if err != nil {
						t.Fatalf("%s sharded: %v", algo, err)
					}
					if va != vb {
						t.Fatalf("%s tau=%v: %v vs %v", algo, tau, va, vb)
					}
				}
			}
			taus := []float64{0.5, 0.7, 0.9}
			curveA, err := coll.EstimateJoinSizeCurve(taus)
			if err != nil {
				t.Fatal(err)
			}
			curveB, err := shrd.EstimateJoinSizeCurve(taus)
			if err != nil {
				t.Fatal(err)
			}
			for i := range taus {
				if curveA[i] != curveB[i] {
					t.Fatalf("curve[%d]: %v vs %v", i, curveA[i], curveB[i])
				}
			}
			xa, err := coll.ExactJoinSize(0.8)
			if err != nil {
				t.Fatal(err)
			}
			xb, err := shrd.ExactJoinSize(0.8)
			if err != nil {
				t.Fatal(err)
			}
			if xa != xb {
				t.Fatalf("exact join %d vs %d", xa, xb)
			}
			pa, err := coll.JoinPairs(0.9)
			if err != nil {
				t.Fatal(err)
			}
			pb, err := shrd.JoinPairs(0.9)
			if err != nil {
				t.Fatal(err)
			}
			if len(pa) != len(pb) {
				t.Fatalf("join pairs %d vs %d", len(pa), len(pb))
			}
			for i := range pa {
				if pa[i] != pb[i] {
					t.Fatalf("pair %d: %+v vs %+v", i, pa[i], pb[i])
				}
			}
			for _, q := range []int{0, 17, 399} {
				sa := coll.SearchSimilar(vecs[q], 0.7)
				sb := shrd.SearchSimilar(vecs[q], 0.7)
				if len(sa) != len(sb) {
					t.Fatalf("search %d: %d vs %d results", q, len(sa), len(sb))
				}
				for i := range sa {
					if sa[i] != sb[i] {
						t.Fatalf("search %d result %d: %d vs %d", q, i, sa[i], sb[i])
					}
				}
			}
		})
	}
}

// Union equivalence for S > 1: order-invariant observables (N_H, exact
// joins, the deterministic J_U estimate, search result sets) match a
// single-index Collection over the same vectors exactly, and the sampled
// merged estimators track the exact join size within their own variance.
func TestShardedUnionEquivalence(t *testing.T) {
	for _, shards := range []int{2, 4} {
		for _, measure := range []Measure{CosineSimilarity, JaccardSimilarity} {
			t.Run(fmt.Sprintf("s=%d measure=%d", shards, measure), func(t *testing.T) {
				vecs := fixtureVectors(t, 500)
				opt := Options{K: 6, Tables: 2, Seed: 9, Measure: measure}
				coll, err := New(vecs[:450], opt)
				if err != nil {
					t.Fatal(err)
				}
				sopt := opt
				sopt.Shards = shards
				shrd, err := NewSharded(vecs[:450], sopt)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range vecs[450:475] {
					coll.Insert(v)
					shrd.Insert(v)
				}
				coll.InsertBatch(vecs[475:])
				shrd.InsertBatch(vecs[475:])
				if coll.N() != shrd.N() {
					t.Fatalf("N %d vs %d", coll.N(), shrd.N())
				}
				// N_H is content-determined and additive over the partition:
				// the merged value must equal the single index's exactly.
				if a, b := coll.PairsSharingBucket(), shrd.PairsSharingBucket(); a != b {
					t.Fatalf("N_H %d vs %d", a, b)
				}
				for _, tau := range []float64{0.6, 0.85} {
					xa, err := coll.ExactJoinSize(tau)
					if err != nil {
						t.Fatal(err)
					}
					xb, err := shrd.ExactJoinSize(tau)
					if err != nil {
						t.Fatal(err)
					}
					if xa != xb {
						t.Fatalf("tau=%v exact join %d vs %d", tau, xa, xb)
					}
					// J_U consumes only (M, N_H, k): exact equality.
					ja, err := coll.Estimator(AlgoJU, WithEstimatorSeed(3))
					if err != nil {
						t.Fatal(err)
					}
					jb, err := shrd.Estimator(AlgoJU, WithEstimatorSeed(3))
					if err != nil {
						t.Fatal(err)
					}
					va, _ := ja.Estimate(tau)
					vb, _ := jb.Estimate(tau)
					if va != vb {
						t.Fatalf("tau=%v JU %v vs %v", tau, va, vb)
					}
				}
				// Search returns the same candidate vectors (ids differ by
				// encoding, so compare the vectors they name).
				for _, q := range []int{3, 77, 449} {
					want := searchedVectors(coll.SearchSimilar(vecs[q], 0.7), coll.Vector)
					got := searchedVectors(shrd.SearchSimilar(vecs[q], 0.7), shrd.Vector)
					if len(want) != len(got) {
						t.Fatalf("query %d: %d vs %d results", q, len(want), len(got))
					}
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("query %d: result sets differ", q)
						}
					}
				}
				// Sampled estimators: mean of a few seeded runs within 2× of
				// the exact join size at a threshold with real selectivity.
				exact, err := shrd.ExactJoinSize(0.8)
				if err != nil {
					t.Fatal(err)
				}
				if exact < 10 {
					t.Skipf("degenerate corpus: exact join %d", exact)
				}
				for _, algo := range []Algorithm{AlgoLSHSS, AlgoMedian, AlgoVirtual} {
					var sum float64
					const reps = 9
					for seed := uint64(1); seed <= reps; seed++ {
						e, err := shrd.Estimator(algo, WithEstimatorSeed(seed*131))
						if err != nil {
							t.Fatalf("%s: %v", algo, err)
						}
						v, err := e.Estimate(0.8)
						if err != nil {
							t.Fatalf("%s: %v", algo, err)
						}
						sum += v
					}
					mean := sum / reps
					if ratio := mean / float64(exact); ratio < 0.5 || ratio > 2.0 {
						t.Errorf("%s: mean %.1f vs exact %d (ratio %.2f)", algo, mean, exact, ratio)
					}
				}
			})
		}
	}
}

// searchedVectors renders the vectors behind search-result ids in a sorted
// canonical form, so differently encoded id spaces can be compared.
func searchedVectors(ids []int, vec func(int) Vector) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = vec(id).String()
	}
	sort.Strings(out)
	return out
}

// Sharded serving soak: concurrent writers spread inserts over shards with
// per-insert publication while readers estimate and search. Run under -race
// (the CI race job does). Invariants: versions, N and N_H only move forward,
// and every estimate respects the feasible range of the N the reader
// observed after it.
func TestShardedConcurrentInsertEstimateSearch(t *testing.T) {
	vecs := fixtureVectors(t, 700)
	coll, err := NewSharded(vecs[:300], Options{K: 10, Seed: 17, Shards: 4, PublishEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var inserted atomic.Int64

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 300 + w; i < len(vecs); i += 4 {
				coll.Insert(vecs[i])
				inserted.Add(1)
			}
		}(w)
	}

	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			var lastN int
			var lastVer, lastNH uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					est, err := coll.Estimator(AlgoLSHSS,
						WithEstimatorSeed(uint64(r*1000+i+1)), WithSampleBudget(200, 200))
					if err != nil {
						t.Error(err)
						return
					}
					v, err := est.Estimate(0.8)
					if err != nil {
						t.Error(err)
						return
					}
					n := coll.N()
					if max := float64(n) * float64(n-1) / 2; v < 0 || v > max {
						t.Errorf("estimate %v outside [0, %v]", v, max)
						return
					}
				case 1:
					q := vecs[(r*131+i)%len(vecs)]
					for _, id := range coll.SearchSimilar(q, 0.7) {
						if s := coll.ShardOf(id); s < 0 || s >= coll.Shards() {
							t.Errorf("result id %d names shard %d", id, s)
							return
						}
					}
				case 2:
					if n := coll.N(); n < lastN {
						t.Errorf("N went backwards: %d after %d", n, lastN)
						return
					} else {
						lastN = n
					}
					if ver := coll.Version(); ver < lastVer {
						t.Errorf("version went backwards: %d after %d", ver, lastVer)
						return
					} else {
						lastVer = ver
					}
					if nh := uint64(coll.PairsSharingBucket()); nh < lastNH {
						t.Errorf("N_H went backwards: %d after %d", nh, lastNH)
						return
					} else {
						lastNH = nh
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got, want := coll.N(), 700; got != want {
		t.Fatalf("final N = %d, want %d", got, want)
	}
	if int(inserted.Load()) != 400 {
		t.Fatalf("writers inserted %d, want 400", inserted.Load())
	}
	vers := coll.ShardVersions()
	if len(vers) != 4 {
		t.Fatalf("ShardVersions returned %d entries", len(vers))
	}
}

// Insert returns shard-encoded ids that keep resolving to the inserted
// vector, whatever shard growth happens around them.
func TestShardedInsertIDsStable(t *testing.T) {
	vecs := fixtureVectors(t, 300)
	coll, err := NewSharded(vecs[:100], Options{K: 8, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 0, 200)
	for _, v := range vecs[100:] {
		ids = append(ids, coll.Insert(v))
	}
	for i, id := range ids {
		if got, want := coll.Vector(id).String(), vecs[100+i].String(); got != want {
			t.Fatalf("id %d resolves to a different vector", id)
		}
	}
	batch := coll.InsertBatch(vecs[:50])
	for i, id := range batch {
		if got, want := coll.Vector(id).String(), vecs[i].String(); got != want {
			t.Fatalf("batch id %d resolves to a different vector", id)
		}
	}
}

// The exact-joiner cache's forward policy must compare full version
// vectors. Summed versions alias: concurrent captures (4,2) and (3,3)
// cover different corpora but sum equally, and a sum comparison would also
// treat (6,1) as newer than (3,3) although shard 1 regressed. Only
// componentwise dominance may advance the cache.
func TestVersionsAdvanceSumAliasing(t *testing.T) {
	cases := []struct {
		next, prev []uint64
		want       bool
	}{
		{[]uint64{4, 2}, []uint64{3, 3}, false}, // equal sums, incomparable
		{[]uint64{3, 3}, []uint64{4, 2}, false},
		{[]uint64{6, 1}, []uint64{3, 3}, false}, // larger sum, shard 1 regressed
		{[]uint64{3, 3}, []uint64{3, 3}, false}, // equal vector: serve from cache, no adopt
		{[]uint64{4, 3}, []uint64{3, 3}, true},
		{[]uint64{3, 4}, []uint64{3, 3}, true},
		{[]uint64{4, 4}, []uint64{3, 3}, true},
		{[]uint64{4}, []uint64{3, 3}, false}, // shape mismatch never advances
	}
	for _, c := range cases {
		if got := versionsAdvance(c.next, c.prev); got != c.want {
			t.Errorf("versionsAdvance(%v, %v) = %v, want %v", c.next, c.prev, got, c.want)
		}
	}
}

// Regression for the version-sum alias: plant a cache entry whose version
// vector differs from the live one but aliases it by sum (and one that
// dominates it). The planted joiner must never be served — ExactJoinSize
// must answer over the live corpus — and an incomparable or dominating
// cached vector must not be evicted by the incoming capture.
func TestExactJoinerCacheSumAliasRegression(t *testing.T) {
	vecs, err := GenerateDataset(DatasetDBLP, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewSharded(vecs, Options{Seed: 3, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.ExactJoinSize(0.9)
	if err != nil {
		t.Fatal(err)
	}
	real := c.capture().Versions()
	// A joiner over a bogus two-vector corpus: if it is ever served, the
	// count collapses to at most 1.
	bogus := exactjoin.NewJoiner(vecs[:2])
	for _, alias := range [][]uint64{
		{real[0] + 1, real[1] - 1}, // same sum, different vector
		{real[0] + 1, real[1] + 1}, // dominates the live vector
	} {
		c.joinerMu.Lock()
		c.joiner, c.joinerVers = bogus, alias
		c.joinerMu.Unlock()
		got, err := c.ExactJoinSize(0.9)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("planted cache vector %v (live %v) was served: got %d, want %d", alias, real, got, want)
		}
		c.joinerMu.Lock()
		kept := slices.Equal(c.joinerVers, alias)
		c.joinerMu.Unlock()
		if !kept {
			t.Fatalf("non-dominated cache vector %v evicted by live capture %v", alias, real)
		}
	}
	// A genuinely newer capture (every shard ≥, one >) replaces the cache.
	c.joinerMu.Lock()
	c.joiner, c.joinerVers = bogus, []uint64{real[0] - 1, real[1]}
	c.joinerMu.Unlock()
	if got, err := c.ExactJoinSize(0.9); err != nil || got != want {
		t.Fatalf("ExactJoinSize after stale cache: %d, %v (want %d)", got, err, want)
	}
	c.joinerMu.Lock()
	adopted := slices.Equal(c.joinerVers, real)
	c.joinerMu.Unlock()
	if !adopted {
		t.Fatal("dominating live capture did not advance the cache")
	}
}
