// Query optimization: the paper's core motivation. A similarity-join
// operator inside a query plan needs an output-cardinality estimate so the
// optimizer can choose between plans; bad estimates pick bad plans, and
// join-size errors propagate multiplicatively (Ioannidis & Christodoulakis,
// cited in §1).
//
// This example prices a toy two-way plan choice for
//
//	Q: (V sim-join V at τ) ⋈ filter
//
// under a simple cost model: "join-first" streams the similarity join into
// the filter (cost grows with the join output J), "filter-first" pays a
// fixed pre-filtering pass that shrinks the quadratic term. The optimizer
// runs 25 times per threshold with fresh estimates from LSH-SS and from
// naive random sampling, and we account the *regret* — how much more the
// chosen plan costs than the optimal one under the true J.
//
//	go run ./examples/queryopt
package main

import (
	"fmt"
	"log"

	"lshjoin"
)

func joinFirstCost(j float64) float64   { return 2e5 + 3*j }
func filterFirstCost(j float64) float64 { return 1.2e6 + 0.2*j }

func pick(j float64) string {
	if joinFirstCost(j) <= filterFirstCost(j) {
		return "join-first"
	}
	return "filter-first"
}

func costOf(plan string, j float64) float64 {
	if plan == "join-first" {
		return joinFirstCost(j)
	}
	return filterFirstCost(j)
}

func main() {
	vecs, err := lshjoin.GenerateDataset(lshjoin.DatasetDBLP, 10000, 5)
	if err != nil {
		log.Fatal(err)
	}
	coll, err := lshjoin.New(vecs, lshjoin.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	lshSS, err := coll.Estimator(lshjoin.AlgoLSHSS, lshjoin.WithEstimatorSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	rs, err := coll.Estimator(lshjoin.AlgoRSPop, lshjoin.WithEstimatorSeed(2))
	if err != nil {
		log.Fatal(err)
	}

	const reps = 25
	fmt.Println("τ     true J     optimal plan   LSH-SS: right plans / avg regret   RS(pop): right plans / avg regret")
	for _, tau := range []float64{0.2, 0.3, 0.4, 0.6, 0.9} {
		truth, err := coll.ExactJoinSize(tau)
		if err != nil {
			log.Fatal(err)
		}
		j := float64(truth)
		best := pick(j)
		bestCost := costOf(best, j)
		type agg struct {
			right  int
			regret float64
		}
		results := map[string]*agg{"ss": {}, "rs": {}}
		for r := 0; r < reps; r++ {
			for key, est := range map[string]lshjoin.Estimator{"ss": lshSS, "rs": rs} {
				v, err := est.Estimate(tau)
				if err != nil {
					log.Fatal(err)
				}
				plan := pick(v)
				if plan == best {
					results[key].right++
				}
				results[key].regret += costOf(plan, j) - bestCost
			}
		}
		ss, rsAgg := results["ss"], results["rs"]
		fmt.Printf("%.1f %10d   %-12s   %2d/%d  /  %10.0f            %2d/%d  /  %10.0f\n",
			tau, truth, best,
			ss.right, reps, ss.regret/reps,
			rsAgg.right, reps, rsAgg.regret/reps)
	}
	fmt.Println("\nAt low-to-mid τ both estimators price the plans fine — random")
	fmt.Println("sampling is accurate when selectivity is high. The high-τ regime is")
	fmt.Println("where they part ways. Second decision: the optimizer sizes the")
	fmt.Println("memory grant for the operator consuming the join output from the")
	fmt.Println("same cardinality estimate. Undergrants (est < J/2) spill to disk;")
	fmt.Println("overgrants (est > 10·J) starve concurrent queries.")
	fmt.Println()
	fmt.Println("τ     true J   LSH-SS: spills / overgrants     RS(pop): spills / overgrants   (of 25 grants)")
	for _, tau := range []float64{0.7, 0.8, 0.9} {
		truth, err := coll.ExactJoinSize(tau)
		if err != nil {
			log.Fatal(err)
		}
		j := float64(truth)
		type grants struct{ spill, over int }
		res := map[string]*grants{"ss": {}, "rs": {}}
		for r := 0; r < reps; r++ {
			for key, est := range map[string]lshjoin.Estimator{"ss": lshSS, "rs": rs} {
				v, err := est.Estimate(tau)
				if err != nil {
					log.Fatal(err)
				}
				if v < j/2 {
					res[key].spill++
				}
				if v > 10*j {
					res[key].over++
				}
			}
		}
		fmt.Printf("%.1f %9d        %2d / %-2d                        %2d / %-2d\n",
			tau, truth, res["ss"].spill, res["ss"].over, res["rs"].spill, res["rs"].over)
	}
	fmt.Println("\nRS(pop)'s estimate at high τ is almost always 0 (spill) and")
	fmt.Println("occasionally thousands-fold too large (overgrant) — the fluctuation")
	fmt.Println("§1 and Example 1 of the paper warn about. LSH-SS stays inside the")
	fmt.Println("grant window because stratum H pins down the duplicate-driven mass.")
}
