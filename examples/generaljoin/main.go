// General (non-self) joins — Appendix B.2.2: estimate the size of a
// similarity join between two different collections, e.g. matching a feed of
// incoming articles against an existing archive before running the match.
//
//	go run ./examples/generaljoin
package main

import (
	"fmt"
	"log"

	"lshjoin"
)

func main() {
	// The archive: yesterday's corpus.
	archive, err := lshjoin.GenerateDataset(lshjoin.DatasetNYT, 3000, 21)
	if err != nil {
		log.Fatal(err)
	}
	// The feed: today's articles — some are syndicated copies of archive
	// stories (we plant them explicitly here).
	feed, err := lshjoin.GenerateDataset(lshjoin.DatasetNYT, 1000, 22)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		feed[i*20] = archive[i*50]
	}

	// Both sides must be hashed with the same LSH functions (same seed/k).
	cj, err := lshjoin.NewCrossJoin(feed, archive, lshjoin.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bipartite bucket matches: N_H = %d of %d cross pairs\n\n",
		cj.PairsSharingBucket(), int64(len(feed))*int64(len(archive)))

	// Default budget at high τ; a larger m_L at mid τ keeps SampleL in its
	// reliable (scale-up) regime instead of the conservative lower bound.
	fmt.Println("τ     estimate      exact")
	for _, tau := range []float64{0.5, 0.7, 0.9} {
		est, err := cj.EstimateJoinSizeBudget(tau, 0, 60000)
		if err != nil {
			log.Fatal(err)
		}
		exact := cj.ExactJoinSize(tau)
		fmt.Printf("%.1f  %9.0f  %9d\n", tau, est, exact)
	}
	fmt.Println("\nThe τ=0.9 mass is the planted syndicated copies; stratum H finds")
	fmt.Println("them through matching bucket g-values across the two tables.")

	// The cross join is live: both sides keep ingesting while estimates
	// serve, and Options.Shards spreads each side across independent index
	// shards (per-shard-pair bucket matchings merge exactly, so N_H and the
	// estimates match the unsharded union). Here the feed streams in new
	// articles — some syndicated — while we re-estimate.
	scj, err := lshjoin.NewCrossJoinSharded(feed, archive, lshjoin.Options{Seed: 9}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := lshjoin.GenerateDataset(lshjoin.DatasetNYT, 200, 23)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		fresh[i*20] = archive[i*100] // more syndicated copies
	}
	scj.InsertBatchLeft(fresh)
	est, err := scj.EstimateJoinSizeBudget(0.9, 0, 60000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter streaming %d fresh feed articles over %d shards/side:\n",
		len(fresh), scj.Shards())
	fmt.Printf("τ=0.9  estimate %.0f  exact %d  (N_H now %d)\n",
		est, scj.ExactJoinSize(0.9), scj.PairsSharingBucket())
}
