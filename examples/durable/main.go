// Durable serving: crash-safe collections with Options.Dir — create a
// store, ingest and publish, "crash" (drop the handle without closing),
// recover with Open, and verify the reopened collection answers exactly
// like the one that died, down to draw-for-draw identical estimator
// streams.
//
//	go run ./examples/durable
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lshjoin"
)

func main() {
	dir := filepath.Join(os.TempDir(), "lshjoin-durable-example")
	os.RemoveAll(dir) // a fresh run each time; New refuses to clobber a store

	vecs, err := lshjoin.GenerateDataset(lshjoin.DatasetDBLP, 4000, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Create: Options.Dir turns the collection into a checkpoint + delta log
	// on disk. PublishEvery=200 makes every 200th insert cut (and fsync) a
	// durable version — the published version is the unit of durability.
	coll, err := lshjoin.New(vecs[:3000], lshjoin.Options{
		Dir:          dir,
		Seed:         42,
		PublishEvery: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range vecs[3000:] {
		coll.Insert(v)
	}
	fmt.Printf("ingested: N=%d version=%d\n", coll.N(), coll.Version())

	// Remember what the live collection answers so we can check the
	// recovered one against it. Seeded estimators are deterministic, so
	// these exact numbers must survive the crash.
	est, err := coll.Estimator(lshjoin.AlgoLSHSS, lshjoin.WithEstimatorSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	wantEst, err := est.Estimate(0.8)
	if err != nil {
		log.Fatal(err)
	}
	wantExact, err := coll.ExactJoinSize(0.8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before crash: J(0.8) ≈ %.0f (exact %d)\n", wantEst, wantExact)

	// "Crash": walk away without Close. Everything published above is
	// already fsynced — the log flushes at publish boundaries — so nothing
	// durable is lost; only never-published pending inserts would be.
	coll = nil

	// Recover. Hashing parameters (k, ℓ, seed, measure) come back from
	// disk; zero Options fields mean "adopt the stored values". A torn log
	// tail would be truncated silently; real corruption would surface as
	// lshjoin.ErrCorruptStore instead of a wrong answer.
	reopened, err := lshjoin.Open(dir, lshjoin.Options{PublishEvery: 200})
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	fmt.Printf("recovered: N=%d version=%d k=%d\n",
		reopened.N(), reopened.Version(), reopened.K())

	est2, err := reopened.Estimator(lshjoin.AlgoLSHSS, lshjoin.WithEstimatorSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	gotEst, err := est2.Estimate(0.8)
	if err != nil {
		log.Fatal(err)
	}
	gotExact, err := reopened.ExactJoinSize(0.8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery: J(0.8) ≈ %.0f (exact %d)\n", gotEst, gotExact)
	if gotEst != wantEst || gotExact != wantExact {
		log.Fatalf("recovered collection diverged: est %v vs %v, exact %d vs %d",
			gotEst, wantEst, gotExact, wantExact)
	}
	fmt.Println("recovered collection is draw-for-draw identical ✓")

	// Keep serving: the recovered collection ingests and publishes durably
	// like the original, and Close checkpoints the final version.
	more, err := lshjoin.GenerateDataset(lshjoin.DatasetDBLP, 500, 43)
	if err != nil {
		log.Fatal(err)
	}
	reopened.InsertBatch(more)
	if err := reopened.Close(); err != nil {
		log.Fatal(err)
	}
	final, err := lshjoin.Open(dir, lshjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer final.Close()
	fmt.Printf("after another ingest + clean Close: N=%d version=%d\n",
		final.N(), final.Version())
}
