// Sharded serving: concurrent writers stream vectors into a 4-shard
// collection with per-insert publication while readers keep estimating the
// join size over atomically captured shard-snapshot vectors. Demonstrates
// per-shard version reporting, contention-free routing, and the merged-N_H
// guarantee (sharded N_H equals what one big index would maintain).
//
//	go run ./examples/shardedserve
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"lshjoin"
)

func main() {
	vecs, err := lshjoin.GenerateDataset(lshjoin.DatasetDBLP, 12000, 42)
	if err != nil {
		log.Fatal(err)
	}
	base, stream := vecs[:8000], vecs[8000:]

	// Four shards, one published version per insert on whichever shard the
	// vector's content routes to. Shards: 1 would behave exactly like
	// lshjoin.New — same index, same estimates, draw for draw.
	coll, err := lshjoin.NewSharded(base, lshjoin.Options{Seed: 42, Shards: 4, PublishEvery: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors over %d shards; shard versions %v; N_H = %d\n\n",
		coll.N(), coll.Shards(), coll.ShardVersions(), coll.PairsSharingBucket())

	// Writers: each goroutine owns a slice of the stream. Inserts contend
	// only when two writers hit the same shard at the same instant.
	perShard := make([]atomic.Int64, coll.Shards())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(stream); i += 4 {
				id := coll.Insert(stream[i])
				perShard[coll.ShardOf(id)].Add(1)
			}
		}(w)
	}

	// Reader: estimates against whatever shard-snapshot vector it captures;
	// each estimator is bound to its capture and never blocks the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := 1; ; round++ {
			est, err := coll.Estimator(lshjoin.AlgoLSHSS,
				lshjoin.WithEstimatorSeed(uint64(round)),
				lshjoin.WithSampleBudget(2000, 2000))
			if err != nil {
				log.Fatal(err)
			}
			guess, err := est.Estimate(0.9)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("round %d: n=%5d  versions=%v  Ĵ(0.9) ≈ %.0f\n",
				round, coll.N(), coll.ShardVersions(), guess)
			if coll.N() == len(vecs) {
				return
			}
		}
	}()
	wg.Wait()
	<-done

	fmt.Println("\nper-shard insert routing (content-hashed, writer-independent):")
	for s := range perShard {
		fmt.Printf("  shard %d: %4d streamed inserts, final version %d\n",
			s, perShard[s].Load(), coll.ShardVersions()[s])
	}

	exact, err := coll.ExactJoinSize(0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal: n=%d  merged N_H=%d  exact J(0.9)=%d\n",
		coll.N(), coll.PairsSharingBucket(), exact)
}
