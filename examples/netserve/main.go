// Network shard serving: two shard servers on loopback, a coordinator
// estimating over them, and the headline guarantee checked live — the
// distributed estimate is bit-equal to an in-process sharded collection
// over the same vectors, and server-side sampling reproduces the
// coordinator's local draws pair for pair.
//
//	go run ./examples/netserve
package main

import (
	"fmt"
	"log"
	"net"

	"lshjoin"
)

func main() {
	const shards = 2
	vecs, err := lshjoin.GenerateDataset(lshjoin.DatasetDBLP, 6000, 42)
	if err != nil {
		log.Fatal(err)
	}
	opt := lshjoin.Options{K: 8, Tables: 2, Seed: 42}

	// Start one shard server per shard. In production these are separate
	// processes (`vsjserve serve`), possibly with Options.Dir for
	// durability; here they share the process to stay runnable anywhere.
	addrs := make([]string, shards)
	for s := 0; s < shards; s++ {
		srv, err := lshjoin.NewShardServer(opt)
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs[s] = ln.Addr().String()
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("shard %d serving on %s\n", s, addrs[s])
	}

	// Connect the coordinator. Zero hashing options adopt the servers'
	// identity from the handshake (set them to assert instead).
	rem, err := lshjoin.Connect(addrs, lshjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer rem.Close()

	// Stream the corpus in over the wire. Vectors route to their home
	// shard by content, exactly like an in-process ShardedCollection.
	if _, err := rem.InsertBatch(vecs); err != nil {
		log.Fatal(err)
	}
	n, err := rem.N()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinator sees n=%d across %d shards (k=%d, ℓ=%d)\n",
		n, rem.Shards(), rem.K(), rem.Tables())

	// The same corpus in-process, for the comparison.
	sopt := opt
	sopt.Shards = shards
	local, err := lshjoin.NewSharded(vecs, sopt)
	if err != nil {
		log.Fatal(err)
	}

	// Same seed, same options, same vectors: the distributed estimate must
	// equal the in-process one bit for bit, for every algorithm.
	for _, algo := range []lshjoin.Algorithm{lshjoin.AlgoLSHSS, lshjoin.AlgoJU, lshjoin.AlgoMedian} {
		for _, tau := range []float64{0.6, 0.8} {
			re, err := rem.Estimator(algo, lshjoin.WithEstimatorSeed(7))
			if err != nil {
				log.Fatal(err)
			}
			le, err := local.Estimator(algo, lshjoin.WithEstimatorSeed(7))
			if err != nil {
				log.Fatal(err)
			}
			rv, err := re.Estimate(tau)
			if err != nil {
				log.Fatal(err)
			}
			lv, err := le.Estimate(tau)
			if err != nil {
				log.Fatal(err)
			}
			if rv != lv { // bit-equal, not approximately equal
				log.Fatalf("τ=%.1f %s: distributed %v != in-process %v", tau, algo, rv, lv)
			}
			fmt.Printf("τ=%.1f  %-8s distributed %12.1f == in-process %12.1f\n",
				tau, algo, rv, lv)
		}
	}

	// The wire-level cross-check: each server draws weighted pairs from its
	// table, the coordinator draws from its reconstructed snapshot with the
	// same seed, and the streams must agree draw for draw.
	for s := 0; s < rem.Shards(); s++ {
		if err := rem.VerifyShardSampling(s, 0, 64, 1234); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("sampling verified: every shard reproduces the coordinator's draws")
}
