// Quickstart: build a collection, estimate the similarity join size across
// the threshold range with LSH-SS, and compare against the exact answer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lshjoin"
)

func main() {
	// A DBLP-shaped synthetic workload: short binary "title" vectors with a
	// few near-duplicate records hidden inside.
	vecs, err := lshjoin.GenerateDataset(lshjoin.DatasetDBLP, 8000, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Index once (k = 20 sign-random-projection bits, one table); the
	// estimators piggyback on the same index a similarity-search
	// application would already maintain.
	coll, err := lshjoin.New(vecs, lshjoin.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors; LSH index ≈ %.2f MB; pairs sharing a bucket N_H = %d\n\n",
		coll.N(), float64(coll.IndexBytes())/(1<<20), coll.PairsSharingBucket())

	est, err := coll.Estimator(lshjoin.AlgoLSHSS, lshjoin.WithEstimatorSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("τ     LSH-SS estimate   exact join size")
	for _, tau := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		guess, err := est.Estimate(tau)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := coll.ExactJoinSize(tau)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.1f   %15.0f   %15d\n", tau, guess, exact)
	}

	fmt.Println("\nNote the regime change: at low τ the join is enormous and easy to")
	fmt.Println("sample; at high τ it is vanishingly selective, which is where the")
	fmt.Println("LSH stratification earns its keep (compare AlgoRSPop yourself).")

	// A whole selectivity curve from one shared sampling pass — what a
	// query optimizer costing several candidate thresholds wants.
	taus := []float64{0.2, 0.4, 0.6, 0.8}
	curve, err := coll.EstimateJoinSizeCurve(taus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nselectivity curve (one sampling pass):")
	for i, tau := range taus {
		fmt.Printf("  J(%.1f) ≈ %.0f\n", tau, curve[i])
	}
}
