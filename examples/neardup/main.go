// Near-duplicate detection: size the duplicate problem *before* paying for
// the full join — the data-cleaning workflow that motivates the paper.
//
// A pipeline that wants to deduplicate a corpus faces a choice: running the
// exact similarity join is expensive, so first ask the estimator (milliseconds)
// whether there is anything to clean, then run the join only if it pays.
//
//	go run ./examples/neardup
package main

import (
	"fmt"
	"log"
	"time"

	"lshjoin"
)

func main() {
	// NYT-shaped corpus: long TF-IDF articles with syndicated near-copies.
	vecs, err := lshjoin.GenerateDataset(lshjoin.DatasetNYT, 4000, 11)
	if err != nil {
		log.Fatal(err)
	}
	coll, err := lshjoin.New(vecs, lshjoin.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	const tau = 0.9 // "near-duplicate" similarity bar

	// Step 1: estimate. This samples the LSH index; no full join happens.
	est, err := coll.Estimator(lshjoin.AlgoLSHSS, lshjoin.WithEstimatorSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	guess, err := est.Estimate(tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated near-duplicate pairs at τ=%.1f: ~%.0f (took %v)\n",
		tau, guess, time.Since(t0).Round(time.Microsecond))

	// Step 2: decide. Suppose cleaning is worth scheduling when at least
	// ~0.01% of records look duplicated.
	budget := float64(coll.N()) / 10000
	if guess < budget {
		fmt.Printf("below the cleaning budget threshold (%.1f) — skip the join\n", budget)
		return
	}

	// Step 3: run the exact prefix-filtered join and show the clusters.
	t0 = time.Now()
	pairs, err := coll.JoinPairs(tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact join found %d near-duplicate pairs (took %v)\n",
		len(pairs), time.Since(t0).Round(time.Millisecond))
	show := len(pairs)
	if show > 5 {
		show = 5
	}
	for _, p := range pairs[:show] {
		fmt.Printf("  records %5d and %5d: cosine %.4f\n", p.U, p.V, p.Sim)
	}
	if len(pairs) > show {
		fmt.Printf("  ... %d more\n", len(pairs)-show)
	}
}
