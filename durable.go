package lshjoin

import (
	"fmt"

	"lshjoin/internal/core"
	"lshjoin/internal/faultfs"
	"lshjoin/internal/lsh"
	"lshjoin/internal/lsh/persist"
)

// Typed store errors, re-exported so callers can errors.Is against them
// without importing internals.
var (
	// ErrNoStore reports an Open of a directory holding no store.
	ErrNoStore = persist.ErrNotExist
	// ErrStoreExists reports a New/NewSharded with Options.Dir naming a
	// directory that already holds a store.
	ErrStoreExists = persist.ErrExists
	// ErrCorruptStore reports on-disk state recovery must not paper over:
	// checksum mismatches away from the delta-log tail, version skew
	// between files, impossible structure. A torn log tail is NOT corrupt —
	// it is truncated silently and the last durable version served.
	ErrCorruptStore = persist.ErrCorrupt
)

// measureOf maps a stored family spec back to the public Measure.
func measureOf(spec lsh.FamilySpec) (Measure, error) {
	switch spec.Name {
	case "simhash":
		return CosineSimilarity, nil
	case "minhash":
		return JaccardSimilarity, nil
	}
	return 0, fmt.Errorf("lshjoin: store built with unsupported family %q: %w", spec.Name, ErrCorruptStore)
}

// reconcile folds the hashing parameters recovered from disk into opt.
// Hashing fields (K, Tables, Seed, Measure, Shards) are owned by the store:
// leaving them zero adopts the stored values, setting them is an assertion
// that must match (ErrInvalidOptions otherwise) — there is no way to rehash
// an existing store by reopening it with different options. Runtime-only
// fields (PublishEvery) pass through untouched.
func reconcile(opt Options, spec lsh.FamilySpec, k, tables, shards int) (Options, error) {
	measure, err := measureOf(spec)
	if err != nil {
		return opt, err
	}
	if opt.K != 0 && opt.K != k {
		return opt, fmt.Errorf("%w: K = %d but the store was built with K = %d", ErrInvalidOptions, opt.K, k)
	}
	if opt.Tables != 0 && opt.Tables != tables {
		return opt, fmt.Errorf("%w: Tables = %d but the store was built with %d", ErrInvalidOptions, opt.Tables, tables)
	}
	if opt.Seed != 0 && opt.Seed != spec.Seed {
		return opt, fmt.Errorf("%w: Seed = %d but the store was built with %d", ErrInvalidOptions, opt.Seed, spec.Seed)
	}
	if opt.Measure != measure && opt.Measure != CosineSimilarity {
		return opt, fmt.Errorf("%w: Measure conflicts with the store's hash family %q", ErrInvalidOptions, spec.Name)
	}
	if opt.Shards != 0 && opt.Shards != shards {
		return opt, fmt.Errorf("%w: Shards = %d but the store holds %d", ErrInvalidOptions, opt.Shards, shards)
	}
	opt.K, opt.Tables, opt.Seed, opt.Measure, opt.Shards = k, tables, spec.Seed, measure, shards
	return opt, nil
}

// applyStorePolicy folds the runtime store knobs of opt into freshly
// created or recovered stores.
func applyStorePolicy(opt Options, stores ...*persist.Store) {
	if opt.CheckpointBytes > 0 {
		for _, st := range stores {
			st.SetCheckpointBytes(opt.CheckpointBytes)
		}
	}
}

// Open recovers the durable collection stored in dir: the last checkpoint
// is loaded, the delta log's valid prefix replayed (a torn tail is
// truncated, never served), and the resulting collection is deep-equal to
// the last durably published version — estimates, searches and SamplePair
// streams included. Hashing options are recovered from disk; opt may leave
// them zero or assert matching values (see Options.Dir), and supplies
// runtime policies like PublishEvery. Errors: ErrNoStore if dir holds no
// store, ErrCorruptStore if its state fails validation, ErrInvalidOptions
// on conflicting options.
func Open(dir string, opt Options) (*Collection, error) {
	opt.Dir = dir // before validation: Dir-dependent rejections must fire
	opt, err := opt.validated()
	if err != nil {
		return nil, err
	}
	index, store, err := persist.Open(faultfs.OS{}, dir)
	if err != nil {
		return nil, fmt.Errorf("lshjoin: %w", err)
	}
	spec, err := lsh.SpecOf(index.Family())
	if err != nil {
		return nil, fmt.Errorf("lshjoin: %w", err)
	}
	opt.Shards = 0 // a plain store has no shard count to assert against
	if opt, err = reconcile(opt, spec, index.K(), index.L(), 1); err != nil {
		store.Close()
		return nil, err
	}
	_, sim, err := familyFor(opt)
	if err != nil {
		store.Close()
		return nil, err
	}
	applyStorePolicy(opt, store)
	return &Collection{
		opt:    opt,
		family: index.Family(),
		sim:    sim,
		index:  index,
		store:  store,
	}, nil
}

// Close makes the collection durable at its current version — pending
// inserts are published, a checkpoint written and fsynced — and releases
// the store. It returns the store's sticky error, if any: a non-nil return
// means some earlier publish may not have reached disk and the checkpoint
// could not repair it. Close is idempotent; a nil-store (purely in-memory)
// collection closes trivially. The collection must not be used afterwards.
func (c *Collection) Close() error {
	if c.store == nil || !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	var cerr error
	c.index.PublishAndThen(func(s *lsh.Snapshot) {
		cerr = c.store.Checkpoint(s)
	})
	if err := c.store.Close(); cerr == nil {
		cerr = err
	}
	if cerr != nil {
		return fmt.Errorf("lshjoin: close: %w", cerr)
	}
	return nil
}

// OpenSharded recovers the durable sharded collection stored in dir: the
// group manifest names the shape, every shard recovers independently
// (checkpoint + delta-log replay), and the reassembled collection routes,
// estimates and samples exactly as the one that wrote the store. Options
// semantics match Open, with Shards also recoverable or assertable.
func OpenSharded(dir string, opt Options) (*ShardedCollection, error) {
	opt.Dir = dir // before validation: Dir-dependent rejections must fire
	opt, err := opt.validated()
	if err != nil {
		return nil, err
	}
	group, stores, meta, err := persist.OpenGroup(faultfs.OS{}, dir)
	if err != nil {
		return nil, fmt.Errorf("lshjoin: %w", err)
	}
	closeAll := func() {
		for _, st := range stores {
			st.Close()
		}
	}
	if opt, err = reconcile(opt, meta.Family, meta.K, meta.Ell, meta.Shards); err != nil {
		closeAll()
		return nil, err
	}
	_, sim, err := familyFor(opt)
	if err != nil {
		closeAll()
		return nil, err
	}
	applyStorePolicy(opt, stores...)
	return &ShardedCollection{
		opt:    opt,
		family: group.Family(),
		sim:    sim,
		group:  group,
		stores: stores,
	}, nil
}

// OpenCrossJoin recovers the durable cross join stored in dir: the cross
// manifest names the shared shape, then each side's group store recovers
// independently — every shard to its last durably published version — so
// the reopened join serves estimates over a componentwise-consistent
// version-vector pair, draw-for-draw identical to the writer's own view of
// those versions. Options semantics match OpenSharded (Tables, if asserted,
// must be 1). Errors: ErrNoStore if dir holds no cross store,
// ErrCorruptStore if its state fails validation, ErrInvalidOptions on
// conflicting options.
func OpenCrossJoin(dir string, opt Options) (*CrossJoin, error) {
	opt.Dir = dir // before validation: Dir-dependent rejections must fire
	opt, err := opt.validated()
	if err != nil {
		return nil, err
	}
	left, right, leftStores, rightStores, meta, err := persist.OpenCross(faultfs.OS{}, dir)
	if err != nil {
		return nil, fmt.Errorf("lshjoin: %w", err)
	}
	closeAll := func() {
		for _, st := range leftStores {
			st.Close()
		}
		for _, st := range rightStores {
			st.Close()
		}
	}
	if opt, err = reconcile(opt, meta.Family, meta.K, 1, meta.Shards); err != nil {
		closeAll()
		return nil, err
	}
	_, sim, err := familyFor(opt)
	if err != nil {
		closeAll()
		return nil, err
	}
	applyStorePolicy(opt, leftStores...)
	applyStorePolicy(opt, rightStores...)
	return &CrossJoin{
		opt:         opt,
		family:      left.Family(),
		sim:         sim,
		left:        left,
		right:       right,
		leftStores:  leftStores,
		rightStores: rightStores,
		strat:       core.NewBipartiteStratumCache(0),
	}, nil
}

// Close makes both sides durable at their current versions — every shard
// publishes and checkpoints — rewrites each side's group manifest and the
// cross manifest with the final version-vector pair, then releases the
// stores. Semantics otherwise match Collection.Close: idempotent, trivial
// for in-memory cross joins, and the first sticky store error is returned.
func (cj *CrossJoin) Close() error {
	if cj.leftStores == nil || !cj.closed.CompareAndSwap(false, true) {
		return nil
	}
	var cerr error
	lvers := closeSideStores(cj.left, cj.leftStores, &cerr)
	rvers := closeSideStores(cj.right, cj.rightStores, &cerr)
	spec, err := lsh.SpecOf(cj.family)
	if err == nil {
		for _, side := range []struct {
			left     bool
			versions []uint64
		}{{true, lvers}, {false, rvers}} {
			gm := persist.GroupMeta{
				Family: spec, K: cj.opt.K, Ell: 1,
				Shards: cj.left.S(), Versions: side.versions,
			}
			if werr := persist.WriteGroupManifest(faultfs.OS{}, persist.CrossSideDir(cj.opt.Dir, side.left), gm); werr != nil && err == nil {
				err = werr
			}
		}
		if err == nil {
			err = persist.WriteCrossManifest(faultfs.OS{}, cj.opt.Dir, persist.CrossMeta{
				Family: spec, K: cj.opt.K, Shards: cj.left.S(),
				LeftVersions: lvers, RightVersions: rvers,
			})
		}
	}
	if err != nil && cerr == nil {
		cerr = err
	}
	for _, st := range append(append([]*persist.Store(nil), cj.leftStores...), cj.rightStores...) {
		if err := st.Close(); err != nil && cerr == nil {
			cerr = err
		}
	}
	if cerr != nil {
		return fmt.Errorf("lshjoin: close: %w", cerr)
	}
	return nil
}

// closeSideStores publishes and checkpoints every shard of one side,
// recording the first sticky error in cerr, and returns the side's final
// durable version vector.
func closeSideStores(g *lsh.ShardGroup, stores []*persist.Store, cerr *error) []uint64 {
	versions := make([]uint64, len(stores))
	for s, st := range stores {
		shard, store := g.Shard(s), st
		shard.PublishAndThen(func(snap *lsh.Snapshot) {
			if err := store.Checkpoint(snap); err != nil && *cerr == nil {
				*cerr = err
			}
		})
		versions[s] = store.DurableVersion()
	}
	return versions
}

// Close makes every shard durable at its current version and rewrites the
// group manifest with the final shard version vector, then releases the
// stores. Semantics otherwise match Collection.Close: idempotent, trivial
// for in-memory collections, and the first sticky shard error is returned.
func (c *ShardedCollection) Close() error {
	if c.stores == nil || !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	var cerr error
	versions := make([]uint64, len(c.stores))
	for s, st := range c.stores {
		shard, store := c.group.Shard(s), st
		shard.PublishAndThen(func(snap *lsh.Snapshot) {
			if err := store.Checkpoint(snap); err != nil && cerr == nil {
				cerr = err
			}
		})
		versions[s] = store.DurableVersion()
	}
	spec, err := lsh.SpecOf(c.family)
	if err == nil {
		meta := persist.GroupMeta{
			Family: spec, K: c.opt.K, Ell: c.opt.Tables,
			Shards: c.group.S(), Versions: versions,
		}
		err = persist.WriteGroupManifest(faultfs.OS{}, c.opt.Dir, meta)
	}
	if err != nil && cerr == nil {
		cerr = err
	}
	for _, st := range c.stores {
		if err := st.Close(); err != nil && cerr == nil {
			cerr = err
		}
	}
	if cerr != nil {
		return fmt.Errorf("lshjoin: close: %w", cerr)
	}
	return nil
}
