package lshjoin

import (
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func fixtureVectors(t *testing.T, n int) []Vector {
	t.Helper()
	vecs, err := GenerateDataset(DatasetDBLP, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	return vecs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("empty collection accepted")
	}
	vecs := fixtureVectors(t, 10)
	if _, err := New(vecs, Options{Measure: Measure(9)}); err == nil {
		t.Error("bogus measure accepted")
	}
	c, err := New(vecs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 20 || c.Tables() != 1 || c.N() != 10 {
		t.Errorf("defaults: k=%d ℓ=%d n=%d", c.K(), c.Tables(), c.N())
	}
}

func TestEstimateMatchesExactShape(t *testing.T) {
	vecs := fixtureVectors(t, 2000)
	c, err := New(vecs, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	exactLow, err := c.ExactJoinSize(0.1)
	if err != nil {
		t.Fatal(err)
	}
	exactHigh, err := c.ExactJoinSize(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if exactLow <= exactHigh {
		t.Fatalf("dataset lost its skew: J(0.1)=%d J(0.9)=%d", exactLow, exactHigh)
	}
	// Average several LSH-SS estimates at a low threshold (reliable regime).
	est, err := c.Estimator(AlgoLSHSS, WithEstimatorSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const reps = 30
	for i := 0; i < reps; i++ {
		v, err := est.Estimate(0.1)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	mean := sum / reps
	if math.Abs(mean-float64(exactLow)) > 0.5*float64(exactLow) {
		t.Errorf("LSH-SS mean %v vs exact %d at τ=0.1", mean, exactLow)
	}
}

func TestEstimateJoinSizeConvenience(t *testing.T) {
	c, err := New(fixtureVectors(t, 500), Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.EstimateJoinSize(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 {
		t.Errorf("negative estimate %v", v)
	}
	if _, err := c.EstimateJoinSize(0); err == nil {
		t.Error("tau=0 accepted")
	}
}

func TestAllAlgorithmsConstructAndRun(t *testing.T) {
	vecs := fixtureVectors(t, 600)
	c, err := New(vecs, Options{Tables: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range Algorithms() {
		est, err := c.Estimator(algo, WithEstimatorSeed(11))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		v, err := est.Estimate(0.5)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if v < 0 || math.IsNaN(v) {
			t.Errorf("%s: bad estimate %v", algo, v)
		}
		if est.Name() == "" {
			t.Errorf("%s: empty name", algo)
		}
	}
	if _, err := c.Estimator("nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestMultiTableAlgorithmsRequireTables(t *testing.T) {
	c, err := New(fixtureVectors(t, 100), Options{}) // ℓ = 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Estimator(AlgoMedian); err == nil {
		t.Error("median with ℓ=1 accepted")
	}
	if _, err := c.Estimator(AlgoVirtual); err == nil {
		t.Error("virtual with ℓ=1 accepted")
	}
}

func TestEstimatorReproducibleWithSeed(t *testing.T) {
	c, err := New(fixtureVectors(t, 400), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Estimator(AlgoLSHSS, WithEstimatorSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Estimator(AlgoLSHSS, WithEstimatorSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	x, _ := a.Estimate(0.5)
	y, _ := b.Estimate(0.5)
	if x != y {
		t.Errorf("same seed gave %v and %v", x, y)
	}
}

func TestJoinPairsAgainstExactCount(t *testing.T) {
	vecs := fixtureVectors(t, 800)
	c, err := New(vecs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := c.JoinPairs(0.8)
	if err != nil {
		t.Fatal(err)
	}
	count, err := c.ExactJoinSize(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(pairs)) != count {
		t.Errorf("JoinPairs found %d, ExactJoinSize %d", len(pairs), count)
	}
	for _, p := range pairs {
		if p.U >= p.V {
			t.Fatalf("pair not ordered: %+v", p)
		}
		if s := Cosine(vecs[p.U], vecs[p.V]); s < 0.8 {
			t.Fatalf("pair %+v has sim %v", p, s)
		}
	}
}

func TestSearchSimilarFindsSelf(t *testing.T) {
	vecs := fixtureVectors(t, 300)
	c, err := New(vecs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := c.SearchSimilar(vecs[0], 0.999)
	found := false
	for _, id := range got {
		if id == 0 {
			found = true
		}
		if s := Cosine(vecs[0], c.Vector(id)); s < 0.999 {
			t.Errorf("result %d has sim %v", id, s)
		}
	}
	if !found {
		t.Error("query vector not found among its own candidates")
	}
}

func TestJaccardMeasureEndToEnd(t *testing.T) {
	vecs := fixtureVectors(t, 500)
	c, err := New(vecs, Options{Measure: JaccardSimilarity, K: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := c.ExactJoinSize(0.5)
	if err != nil {
		t.Fatal(err)
	}
	est, err := c.Estimator(AlgoLSHSS, WithEstimatorSeed(6), WithSampleBudget(500, 40000))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const reps = 30
	for i := 0; i < reps; i++ {
		v, err := est.Estimate(0.5)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	mean := sum / reps
	if exact > 20 && math.Abs(mean-float64(exact)) > 0.6*float64(exact) {
		t.Errorf("Jaccard mean %v vs exact %d", mean, exact)
	}
	// JoinPairs falls back to the brute-force scan for non-cosine measures.
	pairs, err := c.JoinPairs(0.5)
	if err != nil {
		t.Fatalf("Jaccard JoinPairs: %v", err)
	}
	if int64(len(pairs)) != exact {
		t.Errorf("Jaccard JoinPairs found %d, ExactJoinSize %d", len(pairs), exact)
	}
	for _, p := range pairs {
		if p.U >= p.V {
			t.Fatalf("pair not ordered: %+v", p)
		}
		if s := Jaccard(vecs[p.U], vecs[p.V]); s < 0.5 || s != p.Sim {
			t.Fatalf("pair %+v has sim %v", p, s)
		}
	}
	if _, err := c.JoinPairs(0); err == nil {
		t.Error("tau=0 accepted by brute-force JoinPairs")
	}
}

func TestVectorConstructors(t *testing.T) {
	v, err := NewVector([]Entry{{Dim: 3, Weight: 2}, {Dim: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 2 {
		t.Errorf("NNZ = %d", v.NNZ())
	}
	b := BinaryVector([]uint32{5, 5, 9})
	if b.NNZ() != 2 || b.Weight(5) != 1 {
		t.Errorf("binary vector: %v", b)
	}
	if Cosine(v, v) != 1 {
		t.Error("self cosine != 1")
	}
	if Jaccard(b, b) != 1 {
		t.Error("self jaccard != 1")
	}
}

func TestSaveLoadVectors(t *testing.T) {
	vecs := fixtureVectors(t, 50)
	path := filepath.Join(t.TempDir(), "v.vsjv")
	if err := SaveVectors(path, vecs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadVectors(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vecs) {
		t.Fatalf("loaded %d of %d", len(got), len(vecs))
	}
	for i := range vecs {
		if Cosine(got[i], vecs[i]) != 1 && !(got[i].IsZero() && vecs[i].IsZero()) {
			t.Fatalf("vector %d corrupted", i)
		}
	}
}

func TestRecommendedK(t *testing.T) {
	for kind, want := range map[DatasetKind]int{DatasetDBLP: 20, DatasetNYT: 20, DatasetPubMed: 5} {
		got, err := RecommendedK(kind)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: k = %d, want %d", kind, got, want)
		}
	}
	if _, err := RecommendedK("bogus"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestCrossJoinEndToEnd(t *testing.T) {
	left := fixtureVectors(t, 400)
	right, err := GenerateDataset(DatasetDBLP, 300, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Plant common vectors so the high-τ cross join is non-empty.
	copy(right[:20], left[:20])
	cj, err := NewCrossJoin(left, right, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	exact := cj.ExactJoinSize(0.95)
	if exact < 10 {
		t.Fatalf("planting failed: exact = %d", exact)
	}
	var sum float64
	const reps = 30
	for i := 0; i < reps; i++ {
		v, err := cj.EstimateJoinSize(0.95)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	mean := sum / reps
	if mean < 0.1*float64(exact) || mean > 20*float64(exact) {
		t.Errorf("cross-join mean %v vs exact %d", mean, exact)
	}
	if cj.PairsSharingBucket() < int64(0) {
		t.Error("negative NH")
	}
	if _, err := NewCrossJoin(nil, right, Options{}); err == nil {
		t.Error("empty side accepted")
	}
}

func TestInsertUpdatesCollection(t *testing.T) {
	vecs := fixtureVectors(t, 300)
	c, err := New(vecs[:299], Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// An estimator constructed before the insert binds to the pre-insert
	// snapshot: it must keep answering (over 299 vectors) afterwards.
	pre, err := c.Estimator(AlgoLSHSS, WithEstimatorSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	preEst, err := pre.Estimate(0.9)
	if err != nil {
		t.Fatal(err)
	}
	before, err := c.ExactJoinSize(1.0)
	if err != nil {
		t.Fatal(err)
	}
	ver := c.Version()
	// Insert a duplicate of vector 0: exactly one new pair at sim 1.
	id := c.Insert(c.Vector(0))
	if id != 299 {
		t.Fatalf("insert id = %d, want 299", id)
	}
	if c.N() != 300 {
		t.Fatalf("N = %d", c.N())
	}
	if c.Version() <= ver {
		t.Errorf("version did not advance across Insert: %d → %d", ver, c.Version())
	}
	after, err := c.ExactJoinSize(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if after < before+1 {
		t.Errorf("duplicate insert did not raise J(1.0): %d → %d", before, after)
	}
	// The pre-insert estimator still answers over its own version, and with
	// the same seed state class of randomness stays in a sane range.
	postEst, err := pre.Estimate(0.9)
	if err != nil {
		t.Fatalf("snapshot-bound estimator failed after Insert: %v", err)
	}
	if postEst < 0 || math.IsNaN(postEst) {
		t.Errorf("post-insert estimate invalid: %v (first was %v)", postEst, preEst)
	}
	fresh, err := c.Estimator(AlgoLSHSS, WithEstimatorSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Estimate(0.9); err != nil {
		t.Errorf("fresh estimator failed: %v", err)
	}
}

// TestConcurrentInsertEstimateSearch drives the serving contract end to
// end: one goroutine inserts while others construct estimators, estimate,
// search and read exact joins — no locks in the caller, no staleness
// errors, every answer consistent with some published version. Run under
// -race.
func TestConcurrentInsertEstimateSearch(t *testing.T) {
	vecs := fixtureVectors(t, 500)
	c, err := New(vecs[:300], Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() { // writer: stream the remaining vectors one at a time
		defer wg.Done()
		defer close(done)
		for i, v := range vecs[300:] {
			if i%10 == 9 {
				c.InsertBatch(vecs[300+i-9 : 300+i+1][:0]) // exercise the no-op path too
			}
			c.Insert(v)
		}
	}()
	var estimates atomic.Int64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// The done check sits at the loop end so every reader completes
			// at least one full iteration even if the writer wins the race
			// to finish (single-core schedulers regularly let it).
			for r := 0; ; r++ {
				est, err := c.Estimator(AlgoLSHSS,
					WithEstimatorSeed(uint64(w*1000+r+1)), WithSampleBudget(200, 200))
				if err != nil {
					t.Errorf("estimator under ingest: %v", err)
					return
				}
				v, err := est.Estimate(0.5)
				if err != nil {
					t.Errorf("estimate under ingest: %v", err)
					return
				}
				if v < 0 || math.IsNaN(v) {
					t.Errorf("invalid concurrent estimate %v", v)
					return
				}
				estimates.Add(1)
				n := c.N()
				if n < 300 || n > 500 {
					t.Errorf("N = %d out of range", n)
					return
				}
				for _, id := range c.SearchSimilar(vecs[r%300], 0.95) {
					if id >= c.N() {
						t.Errorf("search id %d exceeds collection", id)
						return
					}
				}
				if _, err := c.ExactJoinSize(0.9); err != nil {
					t.Errorf("exact join under ingest: %v", err)
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}(w)
	}
	wg.Wait()
	if c.N() != 500 {
		t.Fatalf("final N = %d", c.N())
	}
	if estimates.Load() == 0 {
		t.Error("no estimates completed during ingest")
	}
	// After the dust settles the collection answers exactly like a fresh one.
	fresh, err := New(vecs, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.ExactJoinSize(0.8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.ExactJoinSize(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("post-ingest exact join %d differs from fresh build %d", a, b)
	}
	if c.PairsSharingBucket() != fresh.PairsSharingBucket() {
		t.Errorf("post-ingest N_H %d differs from fresh build %d",
			c.PairsSharingBucket(), fresh.PairsSharingBucket())
	}
}

func TestInsertBatchMatchesFreshBuild(t *testing.T) {
	vecs := fixtureVectors(t, 400)
	c, err := New(vecs[:250], Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if first := c.InsertBatch(vecs[250:]); first != 250 {
		t.Fatalf("first batch id = %d, want 250", first)
	}
	fresh, err := New(vecs, Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != fresh.N() || c.PairsSharingBucket() != fresh.PairsSharingBucket() {
		t.Errorf("batch-loaded collection (n=%d, NH=%d) differs from fresh (n=%d, NH=%d)",
			c.N(), c.PairsSharingBucket(), fresh.N(), fresh.PairsSharingBucket())
	}
}

func TestEstimateJoinSizeCurvePublic(t *testing.T) {
	c, err := New(fixtureVectors(t, 800), Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	taus := []float64{0.2, 0.5, 0.8}
	curve, err := c.EstimateJoinSizeCurve(taus)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve length %d", len(curve))
	}
	if curve[0] < curve[1] || curve[1] < curve[2] {
		t.Errorf("curve not monotone: %v", curve)
	}
	if _, err := c.EstimateJoinSizeCurve(nil); err == nil {
		t.Error("empty grid accepted")
	}
}
