module lshjoin

go 1.24

// No requirements — the module is deliberately dependency-free and builds
// offline. The vsjlint analyzer suite (cmd/vsjlint, internal/analysis)
// mirrors the golang.org/x/tools/go/analysis API on the standard library
// alone: type information comes from `go list -export` export data, the
// same way go vet's unitchecker obtains it. If an x/tools dependency is
// ever taken, pin it here and the analyzers port mechanically (see
// DESIGN.md "Static analysis").
