module lshjoin

go 1.24
