package lshjoin

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"lshjoin/internal/core"
	"lshjoin/internal/lsh"
	"lshjoin/internal/xrand"
)

// goldenCrossEstimates pins the first five estimates of the Seed 11
// crossFixture workload as produced by the static pre-refactor cross-join
// pipeline; see TestCrossJoinSeedStreamGolden.
var goldenCrossEstimates = []struct {
	tau    float64
	mH, mL int
	want   float64
}{
	{0.95, 0, 0, 25},
	{0.2, 0, 0, 3485.3846153846152},
	{0.3, 100, 4000, 385.0720384204909},
	{0.2, 64, 512, 4350.4807692307695},
	{0.1, 0, 0, 25016.666666666668},
}

// vecEqual compares two vectors entry for entry.
func vecEqual(a, b Vector) bool {
	ae, be := a.Entries(), b.Entries()
	if len(ae) != len(be) {
		return false
	}
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

// crossFixture builds two overlapping DBLP-shaped sides so the high-τ cross
// join is non-empty.
func crossFixture(t *testing.T, nl, nr int) (left, right []Vector) {
	t.Helper()
	left = fixtureVectors(t, nl)
	right, err := GenerateDataset(DatasetDBLP, nr, 8)
	if err != nil {
		t.Fatal(err)
	}
	copy(right[:nr/10], left[:nr/10])
	return left, right
}

// staticCrossJoin replays the pre-refactor static cross-join pipeline: two
// single snapshots built from the frozen slices, one bipartite matching,
// and a fresh general estimator per call on the historical seed stream
// Mix2(seed^0xC105515, ctr). The live CrossJoin at S=1 must be draw-for-draw
// identical to this.
type staticCrossJoin struct {
	left, right []Vector
	sim         core.SimFunc
	bp          *lsh.Bipartite
	seed        uint64
	seedCtr     uint64
}

func newStaticCrossJoin(t *testing.T, left, right []Vector, opt Options) *staticCrossJoin {
	t.Helper()
	opt.fillDefaults()
	family, sim, err := familyFor(opt)
	if err != nil {
		t.Fatal(err)
	}
	li, err := lsh.BuildSnapshot(left, family, opt.K, 1)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := lsh.BuildSnapshot(right, family, opt.K, 1)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := lsh.NewBipartite(li, ri, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &staticCrossJoin{left: left, right: right, sim: sim, bp: bp, seed: opt.Seed}
}

func (sj *staticCrossJoin) estimate(t *testing.T, tau float64, mH, mL int) float64 {
	t.Helper()
	sj.seedCtr++
	var opts []core.GeneralOption
	if mH > 0 || mL > 0 {
		n := (len(sj.left) + len(sj.right)) / 2
		if mH <= 0 {
			mH = n
		}
		if mL <= 0 {
			mL = n
		}
		opts = append(opts, core.WithGeneralSampleSizes(mH, mL))
	}
	est, err := core.NewGeneralLSHSS(sj.bp, sj.sim, opts...)
	if err != nil {
		t.Fatal(err)
	}
	v, err := est.Estimate(tau, xrand.New(xrand.Mix2(sj.seed^0xC105515, sj.seedCtr)))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// The live CrossJoin with one shard per side is draw-for-draw identical to
// the pre-refactor static cross join: same N_H, same exact join, and the
// same estimate for every call on the shared seed stream — across measures
// and budget configurations, with estimates interleaved so the seed
// counters stay aligned.
func TestCrossJoinSingleShardDrawForDraw(t *testing.T) {
	left, right := crossFixture(t, 300, 250)
	for _, opt := range []Options{
		{Seed: 11},
		{Seed: 5, K: 12},
		{Seed: 7, Measure: JaccardSimilarity, K: 6},
	} {
		cj, err := NewCrossJoin(left, right, opt)
		if err != nil {
			t.Fatal(err)
		}
		static := newStaticCrossJoin(t, left, right, opt)
		if got, want := cj.PairsSharingBucket(), static.bp.NH(); got != want {
			t.Fatalf("seed %d: live N_H %d, static %d", opt.Seed, got, want)
		}
		if got, want := cj.ExactJoinSize(0.9), core.ExactGeneralJoin(left, right, static.sim, 0.9); got != want {
			t.Fatalf("seed %d: live exact %d, static %d", opt.Seed, got, want)
		}
		calls := []struct {
			tau    float64
			mH, mL int
		}{
			{0.95, 0, 0}, {0.5, 0, 0}, {0.7, 200, 800}, {0.95, 0, 0}, {0.9, 64, 0},
		}
		for i, cl := range calls {
			got, err := cj.EstimateJoinSizeBudget(cl.tau, cl.mH, cl.mL)
			if err != nil {
				t.Fatal(err)
			}
			if want := static.estimate(t, cl.tau, cl.mH, cl.mL); got != want {
				t.Fatalf("seed %d call %d (τ=%v): live %v, static %v", opt.Seed, i, cl.tau, got, want)
			}
		}
	}
}

// Seed-stream stability: the live CrossJoin must keep producing the exact
// values the static pre-refactor pipeline produced for a pinned workload.
// These constants were recorded from the static pipeline at the refactor
// boundary; a change means the estimator seed stream or the sampling order
// moved, which silently breaks reproducibility for existing users.
func TestCrossJoinSeedStreamGolden(t *testing.T) {
	left, right := crossFixture(t, 300, 250)
	cj, err := NewCrossJoin(left, right, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range goldenCrossEstimates {
		got, err := cj.EstimateJoinSizeBudget(g.tau, g.mH, g.mL)
		if err != nil {
			t.Fatal(err)
		}
		if got != g.want {
			t.Fatalf("call %d (τ=%v, m=%d/%d): estimate %v, pinned %v", i, g.tau, g.mH, g.mL, got, g.want)
		}
	}
}

// Sharded cross joins serve the same statistics as the unsharded union:
// N_H, M-side sizes and the exact join are equal at every shard shape, and
// the sampled estimates track the exact join. Inserts keep both properties
// alive.
func TestCrossJoinShardedUnionEquivalence(t *testing.T) {
	left, right := crossFixture(t, 300, 250)
	union, err := NewCrossJoin(left, right, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	exact := union.ExactJoinSize(0.95)
	if exact < 10 {
		t.Fatalf("planting failed: exact = %d", exact)
	}
	for _, s := range []int{2, 3, 5} {
		cj, err := NewCrossJoinSharded(left, right, Options{Seed: 11}, s)
		if err != nil {
			t.Fatal(err)
		}
		if cj.Shards() != s {
			t.Fatalf("Shards() = %d, want %d", cj.Shards(), s)
		}
		if got, want := cj.LeftN(), union.LeftN(); got != want {
			t.Fatalf("s=%d: LeftN %d, want %d", s, got, want)
		}
		if got, want := cj.PairsSharingBucket(), union.PairsSharingBucket(); got != want {
			t.Fatalf("s=%d: N_H %d, union %d", s, got, want)
		}
		if got := cj.ExactJoinSize(0.95); got != exact {
			t.Fatalf("s=%d: exact %d, union %d", s, got, exact)
		}
		var sum float64
		const reps = 30
		for i := 0; i < reps; i++ {
			v, err := cj.EstimateJoinSize(0.95)
			if err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		if mean := sum / reps; mean < 0.1*float64(exact) || mean > 20*float64(exact) {
			t.Errorf("s=%d: sharded mean %v vs exact %d", s, mean, exact)
		}
		// The general curve over shards is monotone and bounded by M.
		curve, err := cj.EstimateJoinSizeCurve([]float64{0.3, 0.6, 0.9})
		if err != nil {
			t.Fatal(err)
		}
		m := float64(cj.LeftN()) * float64(cj.RightN())
		for i, v := range curve {
			if v < 0 || v > m {
				t.Fatalf("s=%d: curve[%d]=%v outside [0, %v]", s, i, v, m)
			}
			if i > 0 && v > curve[i-1] {
				t.Fatalf("s=%d: curve not monotone at %d", s, i)
			}
		}
		// Two-sided inserts: equality with a fresh union over the grown
		// corpora must survive routing and per-shard publication.
		extraL, err := GenerateDataset(DatasetDBLP, 40, 91)
		if err != nil {
			t.Fatal(err)
		}
		extraR, err := GenerateDataset(DatasetDBLP, 30, 92)
		if err != nil {
			t.Fatal(err)
		}
		copy(extraR[:10], extraL[:10])
		for _, v := range extraL[:20] {
			cj.InsertLeft(v)
		}
		cj.InsertBatchLeft(extraL[20:])
		for _, v := range extraR[:15] {
			cj.InsertRight(v)
		}
		cj.InsertBatchRight(extraR[15:])
		if got, want := cj.LeftN(), len(left)+len(extraL); got != want {
			t.Fatalf("s=%d: LeftN after inserts %d, want %d", s, got, want)
		}
		if got, want := cj.RightN(), len(right)+len(extraR); got != want {
			t.Fatalf("s=%d: RightN after inserts %d, want %d", s, got, want)
		}
		grownUnion, err := NewCrossJoin(append(append([]Vector{}, left...), extraL...),
			append(append([]Vector{}, right...), extraR...), Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := cj.PairsSharingBucket(), grownUnion.PairsSharingBucket(); got != want {
			t.Fatalf("s=%d: N_H after inserts %d, union %d", s, got, want)
		}
		if got, want := cj.ExactJoinSize(0.95), grownUnion.ExactJoinSize(0.95); got != want {
			t.Fatalf("s=%d: exact after inserts %d, union %d", s, got, want)
		}
	}
}

// Insert ids are stable shard-encoded handles: LeftVector/RightVector
// resolve every id (single and batch, both sides) back to the inserted
// vector, at one and several shards.
func TestCrossJoinInsertIDsStable(t *testing.T) {
	left, right := crossFixture(t, 120, 100)
	extra, err := GenerateDataset(DatasetDBLP, 30, 93)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{1, 3} {
		cj, err := NewCrossJoin(left, right, Options{Seed: 11, Shards: s})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range extra[:10] {
			lid := cj.InsertLeft(v)
			rid := cj.InsertRight(extra[10+i])
			if !vecEqual(cj.LeftVector(lid), v) {
				t.Fatalf("s=%d: LeftVector(%d) mismatch", s, lid)
			}
			if !vecEqual(cj.RightVector(rid), extra[10+i]) {
				t.Fatalf("s=%d: RightVector(%d) mismatch", s, rid)
			}
		}
		ids := cj.InsertBatchLeft(extra[20:])
		if len(ids) != len(extra[20:]) {
			t.Fatalf("s=%d: batch returned %d ids for %d vectors", s, len(ids), len(extra[20:]))
		}
		for i, id := range ids {
			if !vecEqual(cj.LeftVector(id), extra[20+i]) {
				t.Fatalf("s=%d: batch id %d resolves to the wrong vector", s, id)
			}
		}
	}
}

// PublishEvery applies per side and per shard: with per-insert publication
// the insert itself must cut the new version. The assertions observe the
// groups through the non-publishing Current view — LeftVersions/RightVersions
// capture (and so publish pending inserts themselves), which would make the
// test pass even with the publication policy deleted.
func TestCrossJoinPublishEvery(t *testing.T) {
	left, right := crossFixture(t, 60, 50)
	// Without a policy, an insert stays pending until some read publishes.
	lazy, err := NewCrossJoin(left, right, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	before := lazy.left.Current().Versions()[0]
	lazy.InsertLeft(left[0])
	if got := lazy.left.Current().Versions()[0]; got != before {
		t.Fatalf("insert published (version %d → %d) with no PublishEvery policy", before, got)
	}
	if p := lazy.left.Shard(0).Pending(); p != 1 {
		t.Fatalf("pending %d after one policy-free insert, want 1", p)
	}

	cj, err := NewCrossJoin(left, right, Options{Seed: 11, PublishEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	beforeL := cj.left.Current().Versions()[0]
	beforeR := cj.right.Current().Versions()[0]
	cj.InsertLeft(left[0])
	if got := cj.left.Current().Versions()[0]; got != beforeL+1 {
		t.Fatalf("left version %d after per-insert publication, want %d", got, beforeL+1)
	}
	if got := cj.right.Current().Versions()[0]; got != beforeR {
		t.Fatalf("right version moved to %d on a left insert", got)
	}
	cj.InsertRight(right[0])
	if got := cj.right.Current().Versions()[0]; got != beforeR+1 {
		t.Fatalf("right version %d after per-insert publication, want %d", got, beforeR+1)
	}
	if p := cj.left.Shard(0).Pending(); p != 0 {
		t.Fatalf("pending %d under per-insert publication, want 0", p)
	}
	// Batch inserts publish the touched shards as well.
	cj.InsertBatchRight(right[:3])
	if got, want := cj.right.Current().Versions()[0], beforeR+2; got != want {
		t.Fatalf("right version %d after batch publication, want %d", got, want)
	}
}

// Option validation: multi-table cross joins are rejected with an error
// (the old constructor silently forced Tables to 1), as are empty sides,
// bad measures and bad shard counts.
func TestCrossJoinOptionsValidation(t *testing.T) {
	left, right := crossFixture(t, 20, 20)
	if _, err := NewCrossJoin(left, right, Options{Tables: 2}); err == nil {
		t.Error("Tables > 1 accepted")
	}
	if _, err := NewCrossJoin(left, right, Options{Tables: 1}); err != nil {
		t.Errorf("explicit Tables = 1 rejected: %v", err)
	}
	if _, err := NewCrossJoin(nil, right, Options{}); err == nil {
		t.Error("empty left side accepted")
	}
	if _, err := NewCrossJoin(left, nil, Options{}); err == nil {
		t.Error("empty right side accepted")
	}
	if _, err := NewCrossJoin(left, right, Options{Measure: Measure(99)}); err == nil {
		t.Error("unknown measure accepted")
	}
	if _, err := NewCrossJoinSharded(left, right, Options{}, -1); err == nil {
		t.Error("negative shard count accepted")
	}
	cj, err := NewCrossJoinSharded(left, right, Options{}, 0)
	if err != nil || cj.Shards() != 1 {
		t.Errorf("zero shard count should default to 1, got %v, %v", cj, err)
	}
}

// Concurrent estimates share one seed counter; before the counter became
// atomic this was a data race (two estimates could also draw the same seed
// and return correlated results). Run under -race.
func TestCrossJoinConcurrentEstimates(t *testing.T) {
	left, right := crossFixture(t, 200, 150)
	cj, err := NewCrossJoin(left, right, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				v, err := cj.EstimateJoinSizeBudget(0.9, 100, 100)
				if err != nil {
					errs <- err
					return
				}
				if math.IsNaN(v) || v < 0 {
					t.Errorf("estimate %v out of range", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// -race soak: concurrent two-sided inserts (single and batch, per-insert
// publication) against concurrent estimates, curves, exact joins and N_H
// reads on a sharded cross join. Sizes must be monotone under observation
// and every estimate well-formed.
func TestCrossJoinConcurrentInsertEstimate(t *testing.T) {
	left, right := crossFixture(t, 150, 120)
	cj, err := NewCrossJoin(left, right, Options{Seed: 11, Shards: 3, PublishEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	extra, err := GenerateDataset(DatasetDBLP, 200, 94)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers stream a bounded number of two-sided inserts (the readers'
	// exact joins are O(|U|·|V|), so the corpus must not grow unboundedly)
	// and keep cycling until the readers finish.
	writer := func(insert func(Vector) int, batch func([]Vector) []int) {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%10 == 9 {
				batch(extra[i%100 : i%100+3])
			} else {
				insert(extra[i%len(extra)])
			}
			runtime.Gosched()
		}
	}
	wg.Add(2)
	go writer(cj.InsertLeft, cj.InsertBatchLeft)
	go writer(cj.InsertRight, cj.InsertBatchRight)
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			lastL, lastR := 0, 0
			for i := 0; i < 10; i++ {
				v, err := cj.EstimateJoinSizeBudget(0.9, 100, 100)
				if err != nil || math.IsNaN(v) || v < 0 {
					t.Errorf("estimate %v, %v", v, err)
					return
				}
				if _, err := cj.EstimateJoinSizeCurve([]float64{0.5, 0.9}); err != nil {
					t.Errorf("curve: %v", err)
					return
				}
				if nh := cj.PairsSharingBucket(); nh < 0 {
					t.Errorf("negative N_H %d", nh)
					return
				}
				l, r := cj.LeftN(), cj.RightN()
				if l < lastL || r < lastR {
					t.Errorf("sizes regressed: (%d,%d) after (%d,%d)", l, r, lastL, lastR)
					return
				}
				lastL, lastR = l, r
			}
			if cj.ExactJoinSize(0.99) < 0 {
				t.Error("negative exact join")
			}
		}()
	}
	readers.Wait()
	close(stop)
	wg.Wait()
}
