package lshjoin

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"

	"lshjoin/internal/faultfs"
	"lshjoin/internal/lsh"
	"lshjoin/internal/lsh/persist"
	"lshjoin/internal/shardrpc"
)

// ShardServer owns one shard of a distributed collection — a single LSH
// index, optionally durable via Options.Dir — and serves it over the wire
// protocol (see DESIGN.md): streamed ingest, snapshot fetches with a
// not-modified fast path, summary digests and server-side sample batches.
// Point a RemoteCollection at S shard servers sharing one hashing identity
// and its estimates are bit-equal to an in-process ShardedCollection over
// the same vectors.
//
// With Options.Dir set, the server creates a crash-safe store there (or
// recovers the existing one under the usual adopt-or-assert option rules),
// and every version published while serving persists through the store's
// write hook — network serving and durability compose with no extra code.
type ShardServer struct {
	opt    Options
	idx    *lsh.Index
	store  *persist.Store // nil for in-memory servers
	srv    *shardrpc.Server
	closed atomic.Bool
}

// NewShardServer builds the server owning one empty (or recovered) shard.
// Options follow New/Open: with Dir unset, K/Tables/Seed/Measure configure a
// fresh in-memory index; with Dir set, an existing store is recovered
// (adopt-or-assert on the hashing fields) or a fresh one created.
// Shards, if set, must be 1 — one server owns one shard; run S processes
// for S shards. Float32Signing is rejected: the signing lane travels with
// neither snapshots nor stores. Call Serve to accept connections.
func NewShardServer(opt Options) (*ShardServer, error) {
	if opt.Shards > 1 {
		return nil, fmt.Errorf("%w: Shards = %d, but a shard server owns exactly one shard (run one server per shard)", ErrInvalidOptions, opt.Shards)
	}
	if opt.Float32Signing {
		return nil, fmt.Errorf("%w: Float32Signing is not supported on a shard server (the signing lane does not travel with snapshots)", ErrInvalidOptions)
	}
	s := &ShardServer{}
	if opt.Dir == "" {
		opt, err := opt.normalized()
		if err != nil {
			return nil, err
		}
		family, _, err := familyFor(opt)
		if err != nil {
			return nil, err
		}
		idx, err := lsh.NewEmptyIndex(family, opt.K, opt.Tables)
		if err != nil {
			return nil, fmt.Errorf("lshjoin: %w", err)
		}
		s.opt, s.idx = opt, idx
	} else {
		opt, err := opt.validated()
		if err != nil {
			return nil, err
		}
		idx, store, err := persist.Open(faultfs.OS{}, opt.Dir)
		switch {
		case err == nil:
			spec, err := lsh.SpecOf(idx.Family())
			if err != nil {
				store.Close()
				return nil, fmt.Errorf("lshjoin: %w", err)
			}
			opt.Shards = 0 // a plain store has no shard count to assert against
			if opt, err = reconcile(opt, spec, idx.K(), idx.L(), 1); err != nil {
				store.Close()
				return nil, err
			}
			s.opt, s.idx, s.store = opt, idx, store
		case errors.Is(err, ErrNoStore):
			opt, err := opt.normalized()
			if err != nil {
				return nil, err
			}
			family, _, err := familyFor(opt)
			if err != nil {
				return nil, err
			}
			idx, err := lsh.NewEmptyIndex(family, opt.K, opt.Tables)
			if err != nil {
				return nil, fmt.Errorf("lshjoin: %w", err)
			}
			store, err := persist.Create(faultfs.OS{}, opt.Dir, idx)
			if err != nil {
				return nil, fmt.Errorf("lshjoin: %w", err)
			}
			s.opt, s.idx, s.store = opt, idx, store
		default:
			return nil, fmt.Errorf("lshjoin: %w", err)
		}
		applyStorePolicy(s.opt, s.store)
	}
	s.srv = shardrpc.NewServer(s.idx, shardrpc.ServerOptions{PublishEvery: s.opt.PublishEvery})
	return s, nil
}

// Serve accepts connections on ln until Close, blocking; it returns nil
// after Close, or the first accept error. Run it on its own goroutine.
func (s *ShardServer) Serve(ln net.Listener) error { return s.srv.Serve(ln) }

// Close stops serving, waits for in-flight requests to drain, and — for a
// durable server — publishes pending ingest, checkpoints, and releases the
// store (returning its sticky error, like Collection.Close). Idempotent.
func (s *ShardServer) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.srv.Close()
	if s.store != nil {
		var cerr error
		s.idx.PublishAndThen(func(snap *lsh.Snapshot) {
			cerr = s.store.Checkpoint(snap)
		})
		if serr := s.store.Close(); cerr == nil {
			cerr = serr
		}
		if cerr != nil {
			return fmt.Errorf("lshjoin: close: %w", cerr)
		}
	}
	return err
}

// InsertBatch bulk-loads vectors locally — no network round trip — for the
// process that owns the shard, returning the first assigned local id. The
// coordinator-side routing contract still applies: load a vector only into
// the shard lsh.RouteVector assigns it to, or coordinated ids will not
// match the in-process collection's.
func (s *ShardServer) InsertBatch(vs []Vector) int {
	first := s.idx.InsertBatch(vs)
	if p := s.opt.PublishEvery; p > 0 && s.idx.Pending() >= p {
		s.idx.Snapshot()
	}
	return first
}

// N returns the shard's vector count, pending ingest included once
// published (this publishes, like any read on a Collection).
func (s *ShardServer) N() int { return s.idx.Snapshot().N() }

// K returns the per-table hash function count.
func (s *ShardServer) K() int { return s.opt.K }

// Tables returns the number of LSH tables ℓ.
func (s *ShardServer) Tables() int { return s.opt.Tables }
