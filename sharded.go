package lshjoin

import (
	"fmt"
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"

	"lshjoin/internal/core"
	"lshjoin/internal/exactjoin"
	"lshjoin/internal/faultfs"
	"lshjoin/internal/lsh"
	"lshjoin/internal/lsh/persist"
	"lshjoin/internal/xrand"
)

// ShardedCollection partitions the key space of an indexed vector collection
// across Options.Shards independent LSH index shards. Routing is consistent
// key-hashing over the vector's content, so a vector's home shard is a pure
// function of its value; inserts on different shards serialize only on their
// own shard's writer lock, and each shard publishes its own snapshot
// versions. Reads capture a shard-snapshot vector — one atomic pointer load
// per shard — and estimators merge the per-shard stratum statistics (N_H and
// cumulative bucket weights are additive across the partition, with
// cross-shard pairs handled by bipartite bucket matchings), so every
// Algorithm of the paper runs over shards.
//
// With Shards == 1 a ShardedCollection is draw-for-draw identical to a
// Collection built from the same vectors and options: same index, same
// estimator streams, same results. All methods are safe for unsynchronized
// concurrent use.
type ShardedCollection struct {
	opt    Options
	family lsh.Family
	sim    core.SimFunc
	group  *lsh.ShardGroup

	// Durable backing (nil for in-memory collections), one store per shard;
	// closed flips once.
	stores []*persist.Store
	closed atomic.Bool

	seedCtr atomic.Uint64

	// The exact joiner is rebuilt lazily whenever any shard's version moved;
	// the cache is keyed on the full per-shard version vector (sums alias:
	// concurrent captures (4,2) and (3,3) cover different corpora).
	joinerMu   sync.Mutex
	joiner     *exactjoin.Joiner
	joinerVers []uint64
}

// NewSharded indexes the vectors across Options.Shards shards (default 1).
// The collection keeps references to the vectors; callers must not mutate
// them afterwards. With Options.Dir set, a durable group store is created
// there — one crash-safe sub-store per shard plus a group manifest — and
// every published shard version persists across restarts; reopen with
// OpenSharded.
func NewSharded(vectors []Vector, opt Options) (*ShardedCollection, error) {
	opt, err := opt.normalized()
	if err != nil {
		return nil, err
	}
	if len(vectors) < 2 {
		return nil, fmt.Errorf("lshjoin: need at least 2 vectors, got %d", len(vectors))
	}
	// Ids pack (shard, local) into one int (see lsh.GroupID); with more than
	// one shard the shard bits don't fit a 32-bit int.
	if opt.Shards > 1 && bits.UintSize < 64 {
		return nil, fmt.Errorf("lshjoin: Shards > 1 requires a 64-bit platform (vector ids pack shard and local index into one int)")
	}
	family, sim, err := familyFor(opt)
	if err != nil {
		return nil, err
	}
	group, err := lsh.NewShardGroupSigned(vectors, family, opt.K, opt.Tables, opt.Shards, opt.signConfig())
	if err != nil {
		return nil, fmt.Errorf("lshjoin: %w", err)
	}
	c := &ShardedCollection{
		opt:    opt,
		family: family,
		sim:    sim,
		group:  group,
	}
	if opt.Dir != "" {
		if c.stores, err = persist.CreateGroup(faultfs.OS{}, opt.Dir, group); err != nil {
			return nil, fmt.Errorf("lshjoin: %w", err)
		}
		applyStorePolicy(opt, c.stores...)
	}
	return c, nil
}

// capture publishes pending inserts shard by shard and returns the
// shard-snapshot vector.
func (c *ShardedCollection) capture() *lsh.GroupSnapshot { return c.group.Capture() }

// Shards returns the shard count S.
func (c *ShardedCollection) Shards() int { return c.group.S() }

// N returns the total number of vectors across shards (including all
// completed Inserts).
func (c *ShardedCollection) N() int { return c.capture().N() }

// K returns the per-table hash function count.
func (c *ShardedCollection) K() int { return c.opt.K }

// Tables returns the number of LSH tables ℓ (per shard; all shards share
// the hash functions, so table t means the same g everywhere).
func (c *ShardedCollection) Tables() int { return c.opt.Tables }

// ShardOf returns the home shard encoded in a vector id returned by Insert.
func (c *ShardedCollection) ShardOf(id int) int {
	s, _ := lsh.SplitGroupID(int64(id))
	return s
}

// Vector returns the vector with the given id (as returned by Insert, or a
// dense initial id for the construction-time vectors of a single-shard
// collection).
func (c *ShardedCollection) Vector(id int) Vector {
	s, local := lsh.SplitGroupID(int64(id))
	return c.capture().Snap(s).Data()[local]
}

// Version returns the summed per-shard publish version: it increases every
// time any shard makes inserts visible to new readers (S for a fresh
// collection). For the vector itself see ShardVersions.
func (c *ShardedCollection) Version() uint64 {
	var v uint64
	for _, sv := range c.capture().Versions() {
		v += sv
	}
	//vsjlint:ignore versiondominance monotone change counter per its doc; dominance callers use ShardVersions
	return v
}

// ShardVersions returns the per-shard publish versions of the latest
// captured shard-snapshot vector (1 per fresh shard).
func (c *ShardedCollection) ShardVersions() []uint64 { return c.capture().Versions() }

// IndexBytes estimates the total LSH index size across shards using the
// paper's §6.3 accounting.
func (c *ShardedCollection) IndexBytes() int64 { return c.capture().SizeBytes() }

// PairsSharingBucket returns the merged N_H of table 0: per-shard intra
// counts plus cross-shard bipartite counts, exactly equal to the N_H a
// single index over the union corpus would maintain.
func (c *ShardedCollection) PairsSharingBucket() int64 {
	ms, err := core.NewMergedStratum(c.capture(), 0)
	if err != nil {
		return 0
	}
	return ms.NH()
}

// Insert routes v to its home shard and adds it there, returning the
// vector's id (shard-encoded; stable for the collection's lifetime). Only
// the home shard's writer serializes, so inserts on different shards proceed
// fully in parallel. With Options.PublishEvery set, the home shard publishes
// once its own pending delta reaches the policy size.
func (c *ShardedCollection) Insert(v Vector) int {
	id := c.group.Insert(v)
	c.maybePublish(c.ShardOf(int(id)))
	return int(id)
}

// InsertBatch routes each vector to its home shard and batch-inserts the
// per-shard runs through the batched signature engine, returning per-vector
// ids aligned with vs.
func (c *ShardedCollection) InsertBatch(vs []Vector) []int {
	ids64 := c.group.InsertBatch(vs)
	ids := make([]int, len(ids64))
	seen := make(map[int]struct{})
	for i, id := range ids64 {
		ids[i] = int(id)
		s, _ := lsh.SplitGroupID(id)
		seen[s] = struct{}{}
	}
	for s := range seen {
		c.maybePublish(s)
	}
	return ids
}

// maybePublish applies the size-based publication policy to one shard.
func (c *ShardedCollection) maybePublish(s int) {
	if p := c.opt.PublishEvery; p > 0 && c.group.Shard(s).Pending() >= p {
		c.group.Shard(s).Snapshot()
	}
}

// EstimateJoinSize estimates the join size with merged LSH-SS under the
// paper's default parameters. Each call draws fresh randomness; use
// Estimator for reproducible or repeated estimation.
func (c *ShardedCollection) EstimateJoinSize(tau float64) (float64, error) {
	est, err := c.Estimator(AlgoLSHSS)
	if err != nil {
		return 0, err
	}
	return est.Estimate(tau)
}

// EstimateJoinSizeCurve estimates the selectivity curve J(τ) for a grid of
// thresholds from one shared merged-LSH-SS sampling pass.
func (c *ShardedCollection) EstimateJoinSizeCurve(taus []float64) ([]float64, error) {
	inner, err := core.NewMergedLSHSS(c.capture(), c.sim)
	if err != nil {
		return nil, err
	}
	return inner.EstimateCurve(taus, xrand.New(c.nextSeed()))
}

// exactJoiner returns the inverted-index joiner over the union corpus at the
// current version vector, rebuilding only when some shard published. The
// joiner is reused only on an exact version-vector match, so the dense ids
// it emits always translate through the returned capture's shard offsets.
func (c *ShardedCollection) exactJoiner() (*exactjoin.Joiner, *lsh.GroupSnapshot) {
	gs := c.capture()
	vers := gs.Versions()
	c.joinerMu.Lock()
	defer c.joinerMu.Unlock()
	if c.joiner != nil && slices.Equal(c.joinerVers, vers) {
		return c.joiner, gs
	}
	j := exactjoin.NewJoiner(gs.Data())
	// Only move the cache forward: a reader that raced publication gets a
	// correct one-off joiner without evicting a newer cached one. "Forward"
	// must be judged on the full version vector — summed versions alias
	// (concurrent captures (4,2) and (3,3) cover different corpora but sum
	// equally), so a sum comparison could adopt a vector that does not
	// dominate the cached one and later serve a joiner for the wrong corpus
	// on an exact vector match. Componentwise dominance cannot: per-shard
	// versions are monotone, so a dominating vector is genuinely newer.
	if c.joiner == nil || versionsAdvance(vers, c.joinerVers) {
		c.joiner, c.joinerVers = j, vers
	}
	return j, gs
}

// versionsGE is the componentwise comparison under version-vector caches
// (the exact joiner above; the cross join's stratum cache uses the same
// rule via core.BipartiteStratumCache): ok reports next ≥ prev in every
// component with matching shapes, newer whether some component strictly
// advanced.
func versionsGE(next, prev []uint64) (ok, newer bool) {
	if len(next) != len(prev) {
		return false, false
	}
	for s := range next {
		if next[s] < prev[s] {
			return false, false
		}
		if next[s] > prev[s] {
			newer = true
		}
	}
	return true, newer
}

// versionsAdvance reports whether version vector next is strictly newer than
// prev: componentwise ≥ with at least one component >. Incomparable vectors
// (concurrent captures that each saw a different shard publish first) never
// advance the cache; both readers still get correct one-off joiners.
func versionsAdvance(next, prev []uint64) bool {
	ok, newer := versionsGE(next, prev)
	return ok && newer
}

// ExactJoinSize computes the true join size over the union corpus with the
// inverted-index exact joiner (brute force for non-cosine measures).
func (c *ShardedCollection) ExactJoinSize(tau float64) (int64, error) {
	if c.opt.Measure != CosineSimilarity {
		return c.exactBrute(c.capture(), tau)
	}
	j, _ := c.exactJoiner()
	return j.CountAt(tau)
}

func (c *ShardedCollection) exactBrute(gs *lsh.GroupSnapshot, tau float64) (int64, error) {
	data := gs.Data()
	var count int64
	for i := range data {
		for j := i + 1; j < len(data); j++ {
			if c.sim(data[i], data[j]) >= tau {
				count++
			}
		}
	}
	return count, nil
}

// JoinPairs materializes the exact similarity join at tau over the union
// corpus. Pair indices are shard-encoded vector ids (see Insert); with one
// shard they are plain dense ids, like Collection.JoinPairs.
func (c *ShardedCollection) JoinPairs(tau float64) ([]JoinPair, error) {
	if c.opt.Measure != CosineSimilarity {
		return c.joinPairsBruteSharded(tau)
	}
	j, gs := c.exactJoiner()
	raw, err := j.Pairs(tau)
	if err != nil {
		return nil, err
	}
	out := make([]JoinPair, len(raw))
	for i, p := range raw {
		out[i] = JoinPair{U: c.denseToID(gs, int(p.U)), V: c.denseToID(gs, int(p.V)), Sim: p.Sim}
	}
	return out, nil
}

func (c *ShardedCollection) joinPairsBruteSharded(tau float64) ([]JoinPair, error) {
	if tau <= 0 || tau > 1 {
		return nil, fmt.Errorf("lshjoin: threshold must be in (0, 1], got %v", tau)
	}
	gs := c.capture()
	data := gs.Data()
	var out []JoinPair
	for i := range data {
		for j := i + 1; j < len(data); j++ {
			if s := c.sim(data[i], data[j]); s >= tau {
				out = append(out, JoinPair{U: c.denseToID(gs, i), V: c.denseToID(gs, j), Sim: s})
			}
		}
	}
	return out, nil
}

// denseToID converts a dense union index to the stable shard-encoded id.
func (c *ShardedCollection) denseToID(gs *lsh.GroupSnapshot, dense int) int {
	s, local := gs.Locate(dense)
	return int(lsh.GroupID(s, local))
}

// SearchSimilar returns ids of indexed vectors with sim(v, ·) ≥ tau among
// the LSH candidates of v, searching every shard's latest published
// snapshot. Results use shard-encoded ids in shard order; with one shard the
// output is identical to Collection.SearchSimilar.
func (c *ShardedCollection) SearchSimilar(v Vector, tau float64) []int {
	gs := c.capture()
	var out []int
	for s := 0; s < gs.S(); s++ {
		for _, local := range gs.Snap(s).Search(v, tau) {
			out = append(out, int(lsh.GroupID(s, int(local))))
		}
	}
	return out
}

// nextSeed derives a fresh deterministic seed for estimator construction,
// with the same stream as Collection.nextSeed so a single-shard collection
// reproduces Collection's estimates.
func (c *ShardedCollection) nextSeed() uint64 {
	return xrand.Mix2(c.opt.Seed^0xE57AB1E, c.seedCtr.Add(1))
}
