package lshjoin

import (
	"fmt"

	"lshjoin/internal/core"
	"lshjoin/internal/exactjoin"
	"lshjoin/internal/lsh"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// Vector is a sparse real-valued vector (sorted non-zero entries).
type Vector = vecmath.Vector

// Entry is one non-zero coordinate of a Vector.
type Entry = vecmath.Entry

// NewVector builds a Vector from entries (any order; duplicate dimensions
// are summed, zeros dropped, non-finite weights rejected).
func NewVector(entries []Entry) (Vector, error) { return vecmath.New(entries) }

// BinaryVector builds a set-of-words vector: weight 1 on each distinct dim.
func BinaryVector(dims []uint32) Vector { return vecmath.FromDims(dims) }

// Cosine returns the cosine similarity of two vectors in [-1, 1].
func Cosine(u, v Vector) float64 { return vecmath.Cosine(u, v) }

// Jaccard returns the Jaccard similarity of the vectors' supports.
func Jaccard(u, v Vector) float64 { return vecmath.Jaccard(u, v) }

// Measure selects the similarity measure (and with it the LSH family).
type Measure int

// Supported similarity measures.
const (
	// CosineSimilarity uses sign-random-projection LSH (Charikar).
	CosineSimilarity Measure = iota
	// JaccardSimilarity uses MinHash over vector supports.
	JaccardSimilarity
)

// Options configures a Collection.
type Options struct {
	// K is the number of hash functions concatenated per LSH table
	// (default 20, the paper's setting; PubMed-like dissimilar data prefers
	// ~5, see App. C.4).
	K int
	// Tables is ℓ, the number of LSH tables (default 1; >1 enables the
	// median and virtual-bucket estimators).
	Tables int
	// Seed drives all hashing and sampling (default 1).
	Seed uint64
	// Measure selects cosine (default) or Jaccard similarity.
	Measure Measure
}

func (o *Options) fillDefaults() {
	if o.K == 0 {
		o.K = 20
	}
	if o.Tables == 0 {
		o.Tables = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Collection is an indexed vector collection: the entry point for join size
// estimation, exact joins, and similarity search.
type Collection struct {
	vectors []Vector
	opt     Options
	family  lsh.Family
	sim     core.SimFunc
	index   *lsh.Index
	joiner  *exactjoin.Joiner // lazy
	seedCtr uint64
}

// New indexes the vectors. The collection keeps a reference to the slice;
// callers must not mutate it afterwards.
func New(vectors []Vector, opt Options) (*Collection, error) {
	opt.fillDefaults()
	if len(vectors) < 2 {
		return nil, fmt.Errorf("lshjoin: need at least 2 vectors, got %d", len(vectors))
	}
	var family lsh.Family
	var sim core.SimFunc
	switch opt.Measure {
	case CosineSimilarity:
		family = lsh.NewSimHash(opt.Seed)
		sim = vecmath.Cosine
	case JaccardSimilarity:
		family = lsh.NewMinHash(opt.Seed)
		sim = vecmath.Jaccard
	default:
		return nil, fmt.Errorf("lshjoin: unknown measure %d", opt.Measure)
	}
	index, err := lsh.Build(vectors, family, opt.K, opt.Tables)
	if err != nil {
		return nil, fmt.Errorf("lshjoin: %w", err)
	}
	return &Collection{
		vectors: vectors,
		opt:     opt,
		family:  family,
		sim:     sim,
		index:   index,
	}, nil
}

// N returns the number of vectors.
func (c *Collection) N() int { return len(c.vectors) }

// Vector returns vector i.
func (c *Collection) Vector(i int) Vector { return c.vectors[i] }

// K returns the per-table hash function count.
func (c *Collection) K() int { return c.opt.K }

// Tables returns the number of LSH tables ℓ.
func (c *Collection) Tables() int { return c.opt.Tables }

// IndexBytes estimates the LSH index size using the paper's §6.3 accounting
// (g values, bucket counts, vector ids).
func (c *Collection) IndexBytes() int64 { return c.index.SizeBytes() }

// PairsSharingBucket returns N_H of table 0: the number of vector pairs
// co-located in some bucket — the quantity the extended LSH index maintains.
func (c *Collection) PairsSharingBucket() int64 { return c.index.Table(0).NH() }

// EstimateJoinSize estimates |{(u,v): sim(u,v) ≥ tau, u ≠ v}| with LSH-SS
// under the paper's default parameters (m_H = m_L = n, δ = log₂ n, safe
// lower bound). Each call draws fresh randomness; use Estimator for
// reproducible or repeated estimation.
func (c *Collection) EstimateJoinSize(tau float64) (float64, error) {
	est, err := c.Estimator(AlgoLSHSS)
	if err != nil {
		return 0, err
	}
	return est.Estimate(tau)
}

// Insert adds a vector to the collection and its LSH index (ℓ·k hash
// evaluations; bucket counts and N_H stay exact), returning the vector's
// id. Estimators constructed before an Insert hold a snapshot and return an
// error if used afterwards — construct them anew. The exact joiner is also
// rebuilt lazily on next use.
func (c *Collection) Insert(v Vector) int {
	id := c.index.Insert(v)
	c.vectors = c.index.Data()
	c.joiner = nil
	return id
}

// EstimateJoinSizeCurve estimates the whole selectivity curve J(τ) for a
// grid of thresholds from one shared LSH-SS sampling pass — what an
// optimizer costing a similarity predicate at several candidate thresholds
// wants. The result aligns with taus and is monotone non-increasing after
// sorting taus ascending.
func (c *Collection) EstimateJoinSizeCurve(taus []float64) ([]float64, error) {
	inner, err := core.NewLSHSS(c.index.Table(0), c.vectors, c.sim)
	if err != nil {
		return nil, err
	}
	return inner.EstimateCurve(taus, xrand.New(c.nextSeed()))
}

// ExactJoinSize computes the true join size with the inverted-index exact
// joiner — O(Σ df²), for ground truth and small-to-medium collections.
func (c *Collection) ExactJoinSize(tau float64) (int64, error) {
	if c.opt.Measure != CosineSimilarity {
		return c.exactBrute(tau)
	}
	if c.joiner == nil {
		c.joiner = exactjoin.NewJoiner(c.vectors)
	}
	return c.joiner.CountAt(tau)
}

func (c *Collection) exactBrute(tau float64) (int64, error) {
	var count int64
	for i := range c.vectors {
		for j := i + 1; j < len(c.vectors); j++ {
			if c.sim(c.vectors[i], c.vectors[j]) >= tau {
				count++
			}
		}
	}
	return count, nil
}

// JoinPair is one similarity join result.
type JoinPair struct {
	U, V int     // vector indices, U < V
	Sim  float64 // their similarity
}

// JoinPairs materializes the exact similarity join at tau (cosine only),
// using the All-Pairs prefix-filtered joiner.
func (c *Collection) JoinPairs(tau float64) ([]JoinPair, error) {
	if c.opt.Measure != CosineSimilarity {
		return nil, fmt.Errorf("lshjoin: JoinPairs supports cosine similarity only")
	}
	if c.joiner == nil {
		c.joiner = exactjoin.NewJoiner(c.vectors)
	}
	raw, err := c.joiner.Pairs(tau)
	if err != nil {
		return nil, err
	}
	out := make([]JoinPair, len(raw))
	for i, p := range raw {
		out[i] = JoinPair{U: int(p.U), V: int(p.V), Sim: p.Sim}
	}
	return out, nil
}

// SearchSimilar returns indices of indexed vectors with sim(v, ·) ≥ tau
// among the LSH candidates of v — approximate search with the usual LSH
// false-negative caveat.
func (c *Collection) SearchSimilar(v Vector, tau float64) []int {
	ids := c.index.Search(v, tau)
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// nextSeed derives a fresh deterministic seed for estimator construction.
func (c *Collection) nextSeed() uint64 {
	c.seedCtr++
	return xrand.Mix2(c.opt.Seed^0xE57AB1E, c.seedCtr)
}
