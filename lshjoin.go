package lshjoin

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lshjoin/internal/core"
	"lshjoin/internal/exactjoin"
	"lshjoin/internal/faultfs"
	"lshjoin/internal/lsh"
	"lshjoin/internal/lsh/persist"
	"lshjoin/internal/vecmath"
	"lshjoin/internal/xrand"
)

// Vector is a sparse real-valued vector (sorted non-zero entries).
type Vector = vecmath.Vector

// Entry is one non-zero coordinate of a Vector.
type Entry = vecmath.Entry

// NewVector builds a Vector from entries (any order; duplicate dimensions
// are summed, zeros dropped, non-finite weights rejected).
func NewVector(entries []Entry) (Vector, error) { return vecmath.New(entries) }

// BinaryVector builds a set-of-words vector: weight 1 on each distinct dim.
func BinaryVector(dims []uint32) Vector { return vecmath.FromDims(dims) }

// Cosine returns the cosine similarity of two vectors in [-1, 1].
func Cosine(u, v Vector) float64 { return vecmath.Cosine(u, v) }

// Jaccard returns the Jaccard similarity of the vectors' supports.
func Jaccard(u, v Vector) float64 { return vecmath.Jaccard(u, v) }

// Measure selects the similarity measure (and with it the LSH family).
type Measure int

// Supported similarity measures.
const (
	// CosineSimilarity uses sign-random-projection LSH (Charikar).
	CosineSimilarity Measure = iota
	// JaccardSimilarity uses MinHash over vector supports.
	JaccardSimilarity
)

// Options configures a Collection.
type Options struct {
	// K is the number of hash functions concatenated per LSH table
	// (default 20, the paper's setting; PubMed-like dissimilar data prefers
	// ~5, see App. C.4).
	K int
	// Tables is ℓ, the number of LSH tables (default 1; >1 enables the
	// median and virtual-bucket estimators).
	Tables int
	// Seed drives all hashing and sampling (default 1).
	Seed uint64
	// Measure selects cosine (default) or Jaccard similarity.
	Measure Measure
	// PublishEvery, when > 0, makes Insert and InsertBatch publish a fresh
	// snapshot as soon as the pending delta reaches that many vectors:
	// 1 publishes per insert, larger values publish in size-bounded groups.
	// Publication is O(delta · log #buckets) through the persistent Fenwick
	// weight index, so per-insert publication stays affordable however many
	// buckets the tables hold. 0 (the default) keeps publish-on-read:
	// deltas accumulate until the next read on the Collection.
	PublishEvery int
	// Shards is the shard count S consumed by NewSharded and NewCrossJoin
	// (default 1): the key space is partitioned across S independent indexes
	// (per side, for a cross join) with consistent key-hash routing, inserts
	// on different shards never contend, and estimates merge per-shard
	// statistics. New ignores it — a Collection is always a single index.
	// NewSharded and NewCrossJoin with Shards == 1 behave draw-for-draw
	// identically to New and the static single-snapshot cross join.
	Shards int
	// Dir, when non-empty, makes the collection durable: New, NewSharded and
	// NewCrossJoin create a crash-safe store there (one sub-store per shard
	// for a sharded collection; two group stores under one cross manifest for
	// a cross join) and every published version is persisted — checkpointed
	// snapshots plus an fsynced delta log. Reopen with Open, OpenSharded or
	// OpenCrossJoin; call Close to checkpoint on shutdown. See the durability
	// section of the package documentation for the exact guarantees.
	Dir string
	// CheckpointBytes tunes the background checkpoint threshold of a durable
	// collection: once the delta-log bytes a recovery would replay exceed it,
	// the next publish switches to a fresh log and a background goroutine
	// checkpoints the published snapshot — the publish path itself never
	// writes a checkpoint. 0 keeps the store default (4 MiB); negative is
	// rejected. In-memory collections ignore it.
	CheckpointBytes int
	// Float32Signing switches cosine batch builds (and the single-vector
	// hashing that must agree with them) to the float32 projection lane:
	// half the signing cache footprint and memory bandwidth, at the cost of
	// occasional sign flips on near-orthogonal projections. The resulting
	// signatures are different — not worse — than the float64 lane's, so
	// the flag changes bucket contents while estimator guarantees hold
	// unchanged. Jaccard collections ignore it (MinHash is an integer
	// pipeline), and durable collections (Dir set) reject it for now.
	Float32Signing bool
	// SignPanelBytes caps the resident projection cache of a batch build.
	// When the fused dimension-major cache would exceed the budget, signing
	// streams the vocabulary in dimension-block panels and produces output
	// identical to the fused pass. 0 means the 64 MiB default; negative is
	// rejected.
	SignPanelBytes int
}

func (o *Options) fillDefaults() {
	if o.K == 0 {
		o.K = 20
	}
	if o.Tables == 0 {
		o.Tables = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Shards == 0 {
		o.Shards = 1
	}
}

// familyFor resolves the measure to its LSH family and similarity function.
func familyFor(opt Options) (lsh.Family, core.SimFunc, error) {
	switch opt.Measure {
	case CosineSimilarity:
		return lsh.NewSimHash(opt.Seed), vecmath.Cosine, nil
	case JaccardSimilarity:
		return lsh.NewMinHash(opt.Seed), vecmath.Jaccard, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown measure %d", ErrInvalidOptions, opt.Measure)
	}
}

// Collection is an indexed vector collection: the entry point for join size
// estimation, exact joins, and similarity search.
//
// A Collection is safe for concurrent use: Insert and InsertBatch append to
// the index's pending delta under a write lock, reads run against
// atomically-published immutable snapshots, and estimators bind to the
// snapshot current at their construction. An estimator therefore keeps
// answering — correctly, over its own version — no matter how many vectors
// arrive after it was built; construct a new estimator to observe newer
// data.
type Collection struct {
	opt    Options
	family lsh.Family
	sim    core.SimFunc
	index  *lsh.Index

	// Durable backing (nil for in-memory collections); closed flips once.
	store  *persist.Store
	closed atomic.Bool

	seedCtr atomic.Uint64

	// The exact joiner is rebuilt lazily whenever the index version moved.
	joinerMu  sync.Mutex
	joiner    *exactjoin.Joiner
	joinerVer uint64
}

// New indexes the vectors. The collection keeps a reference to the slice;
// callers must not mutate it afterwards. With Options.Dir set, a durable
// store is created there (ErrStoreExists if one already is) and every
// published version persists across restarts; reopen with Open.
func New(vectors []Vector, opt Options) (*Collection, error) {
	opt, err := opt.normalized()
	if err != nil {
		return nil, err
	}
	if len(vectors) < 2 {
		return nil, fmt.Errorf("lshjoin: need at least 2 vectors, got %d", len(vectors))
	}
	family, sim, err := familyFor(opt)
	if err != nil {
		return nil, err
	}
	index, err := lsh.BuildSigned(vectors, family, opt.K, opt.Tables, opt.signConfig())
	if err != nil {
		return nil, fmt.Errorf("lshjoin: %w", err)
	}
	c := &Collection{
		opt:    opt,
		family: family,
		sim:    sim,
		index:  index,
	}
	if opt.Dir != "" {
		if c.store, err = persist.Create(faultfs.OS{}, opt.Dir, index); err != nil {
			return nil, fmt.Errorf("lshjoin: %w", err)
		}
		applyStorePolicy(opt, c.store)
	}
	return c, nil
}

// snap publishes any pending inserts and returns the latest immutable view.
func (c *Collection) snap() *lsh.Snapshot { return c.index.Snapshot() }

// N returns the number of vectors (including all completed Inserts).
func (c *Collection) N() int { return c.snap().N() }

// Vector returns vector i.
func (c *Collection) Vector(i int) Vector { return c.snap().Data()[i] }

// K returns the per-table hash function count.
func (c *Collection) K() int { return c.opt.K }

// Tables returns the number of LSH tables ℓ.
func (c *Collection) Tables() int { return c.opt.Tables }

// IndexBytes estimates the LSH index size using the paper's §6.3 accounting
// (g values, bucket counts, vector ids).
func (c *Collection) IndexBytes() int64 { return c.snap().SizeBytes() }

// PairsSharingBucket returns N_H of table 0: the number of vector pairs
// co-located in some bucket — the quantity the extended LSH index maintains.
func (c *Collection) PairsSharingBucket() int64 { return c.snap().Table(0).NH() }

// Version returns the collection's publish version: it increments every
// time inserts become visible to new readers (1 for a fresh collection).
func (c *Collection) Version() uint64 { return c.snap().Version() }

// EstimateJoinSize estimates |{(u,v): sim(u,v) ≥ tau, u ≠ v}| with LSH-SS
// under the paper's default parameters (m_H = m_L = n, δ = log₂ n, safe
// lower bound). Each call draws fresh randomness; use Estimator for
// reproducible or repeated estimation.
func (c *Collection) EstimateJoinSize(tau float64) (float64, error) {
	est, err := c.Estimator(AlgoLSHSS)
	if err != nil {
		return 0, err
	}
	return est.Estimate(tau)
}

// Insert adds a vector to the collection and its LSH index (ℓ·k hash
// evaluations; bucket counts and N_H stay exact), returning the vector's
// id. The insert is visible to every subsequent read on this collection;
// estimators constructed earlier keep answering over the version they were
// built on. Safe to call concurrently with reads, estimates and other
// inserts. With Options.PublishEvery set, Insert also publishes once the
// pending delta reaches the policy size, so lock-free readers observe fresh
// versions without issuing reads of their own.
func (c *Collection) Insert(v Vector) int {
	id := c.index.Insert(v)
	c.maybePublish()
	return id
}

// InsertBatch inserts vectors in order and returns the id of the first.
// The batch is signed through the batched signature engine, so bulk loading
// costs far less than repeated Inserts, and readers observe the whole batch
// atomically at the next read (or immediately, under Options.PublishEvery).
func (c *Collection) InsertBatch(vs []Vector) int {
	first := c.index.InsertBatch(vs)
	c.maybePublish()
	return first
}

// maybePublish applies the size-based publication policy: cut a new version
// as soon as the pending delta reaches PublishEvery vectors. The pending
// count is re-checked inside Snapshot under the writer lock, so concurrent
// inserts publish each delta exactly once.
func (c *Collection) maybePublish() {
	if p := c.opt.PublishEvery; p > 0 && c.index.Pending() >= p {
		c.index.Snapshot()
	}
}

// EstimateJoinSizeCurve estimates the whole selectivity curve J(τ) for a
// grid of thresholds from one shared LSH-SS sampling pass — what an
// optimizer costing a similarity predicate at several candidate thresholds
// wants. The result aligns with taus and is monotone non-increasing after
// sorting taus ascending.
func (c *Collection) EstimateJoinSizeCurve(taus []float64) ([]float64, error) {
	inner, err := core.NewLSHSS(c.snap(), c.sim)
	if err != nil {
		return nil, err
	}
	return inner.EstimateCurve(taus, xrand.New(c.nextSeed()))
}

// exactJoiner returns the inverted-index joiner for the current version,
// rebuilding it only when inserts have been published since the last call.
func (c *Collection) exactJoiner() (*exactjoin.Joiner, *lsh.Snapshot) {
	s := c.snap()
	c.joinerMu.Lock()
	defer c.joinerMu.Unlock()
	if c.joiner != nil && c.joinerVer == s.Version() {
		return c.joiner, s
	}
	j := exactjoin.NewJoiner(s.Data())
	// Only move the cache forward: a reader that raced publication and holds
	// an older version gets a correct one-off joiner without evicting the
	// newer cached one (no rebuild ping-pong between concurrent readers).
	if c.joiner == nil || s.Version() > c.joinerVer {
		c.joiner, c.joinerVer = j, s.Version()
	}
	return j, s
}

// ExactJoinSize computes the true join size with the inverted-index exact
// joiner — O(Σ df²), for ground truth and small-to-medium collections.
func (c *Collection) ExactJoinSize(tau float64) (int64, error) {
	if c.opt.Measure != CosineSimilarity {
		return c.exactBrute(c.snap(), tau)
	}
	j, _ := c.exactJoiner()
	return j.CountAt(tau)
}

func (c *Collection) exactBrute(s *lsh.Snapshot, tau float64) (int64, error) {
	data := s.Data()
	var count int64
	for i := range data {
		for j := i + 1; j < len(data); j++ {
			if c.sim(data[i], data[j]) >= tau {
				count++
			}
		}
	}
	return count, nil
}

// JoinPair is one similarity join result.
type JoinPair struct {
	U, V int     // vector indices, U < V
	Sim  float64 // their similarity
}

// JoinPairs materializes the exact similarity join at tau. Cosine
// collections use the All-Pairs prefix-filtered joiner; other measures fall
// back to the brute-force pair scan (O(n²) similarity evaluations), so the
// API is complete across measures.
func (c *Collection) JoinPairs(tau float64) ([]JoinPair, error) {
	if c.opt.Measure != CosineSimilarity {
		return c.joinPairsBrute(tau)
	}
	j, _ := c.exactJoiner()
	raw, err := j.Pairs(tau)
	if err != nil {
		return nil, err
	}
	out := make([]JoinPair, len(raw))
	for i, p := range raw {
		out[i] = JoinPair{U: int(p.U), V: int(p.V), Sim: p.Sim}
	}
	return out, nil
}

// joinPairsBrute enumerates every pair — the measure-agnostic fallback.
func (c *Collection) joinPairsBrute(tau float64) ([]JoinPair, error) {
	if tau <= 0 || tau > 1 {
		return nil, fmt.Errorf("lshjoin: threshold must be in (0, 1], got %v", tau)
	}
	data := c.snap().Data()
	var out []JoinPair
	for i := range data {
		for j := i + 1; j < len(data); j++ {
			if s := c.sim(data[i], data[j]); s >= tau {
				out = append(out, JoinPair{U: i, V: j, Sim: s})
			}
		}
	}
	return out, nil
}

// SearchSimilar returns indices of indexed vectors with sim(v, ·) ≥ tau
// among the LSH candidates of v — approximate search with the usual LSH
// false-negative caveat. The search runs lock-free against the latest
// published version.
func (c *Collection) SearchSimilar(v Vector, tau float64) []int {
	ids := c.snap().Search(v, tau)
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// nextSeed derives a fresh deterministic seed for estimator construction.
func (c *Collection) nextSeed() uint64 {
	return xrand.Mix2(c.opt.Seed^0xE57AB1E, c.seedCtr.Add(1))
}
