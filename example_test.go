package lshjoin_test

import (
	"fmt"
	"log"

	"lshjoin"
)

// The basic workflow: index once, then estimate join sizes at any threshold.
func ExampleNew() {
	vecs, err := lshjoin.GenerateDataset(lshjoin.DatasetDBLP, 2000, 42)
	if err != nil {
		log.Fatal(err)
	}
	coll, err := lshjoin.New(vecs, lshjoin.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	estimate, err := coll.EstimateJoinSize(0.9)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := coll.ExactJoinSize(0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate and exact agree within 5x: %v\n", estimate >= float64(exact)/5 && estimate <= float64(exact)*5)
	// Output: estimate and exact agree within 5x: true
}

// Estimators are constructed per algorithm; a fixed seed makes them
// reproducible.
func ExampleCollection_Estimator() {
	vecs, err := lshjoin.GenerateDataset(lshjoin.DatasetDBLP, 1000, 7)
	if err != nil {
		log.Fatal(err)
	}
	coll, err := lshjoin.New(vecs, lshjoin.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	a, err := coll.Estimator(lshjoin.AlgoLSHSS, lshjoin.WithEstimatorSeed(99))
	if err != nil {
		log.Fatal(err)
	}
	b, err := coll.Estimator(lshjoin.AlgoLSHSS, lshjoin.WithEstimatorSeed(99))
	if err != nil {
		log.Fatal(err)
	}
	x, _ := a.Estimate(0.8)
	y, _ := b.Estimate(0.8)
	fmt.Printf("same seed, same estimate: %v\n", x == y)
	fmt.Printf("algorithm: %s\n", a.Name())
	// Output:
	// same seed, same estimate: true
	// algorithm: LSH-SS
}

// Vectors are sparse (dimension, weight) lists; binary vectors model sets.
func ExampleNewVector() {
	v, err := lshjoin.NewVector([]lshjoin.Entry{
		{Dim: 10, Weight: 0.5},
		{Dim: 3, Weight: 1.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	w := lshjoin.BinaryVector([]uint32{3, 10})
	fmt.Printf("nnz=%d cosine=%.3f\n", v.NNZ(), lshjoin.Cosine(v, w))
	// Output: nnz=2 cosine=0.894
}
