package lshjoin

import (
	"errors"
	"fmt"

	"lshjoin/internal/lsh"
)

// ErrInvalidOptions reports an Options value no constructor can honor:
// negative counts, an unknown measure, out-of-range shard counts, or fields
// conflicting with an on-disk store. Test with errors.Is; the error text
// names the offending field.
var ErrInvalidOptions = errors.New("lshjoin: invalid options")

// normalized validates opt and fills defaults, in that order — so explicit
// garbage (a negative count) is rejected rather than silently replaced,
// while the zero value of every field still means "use the default". The
// in-memory constructors (New, NewSharded, NewCrossJoin) route through it
// and report the same ErrInvalidOptions for the same mistakes.
func (o Options) normalized() (Options, error) {
	o, err := o.validated()
	if err != nil {
		return o, err
	}
	o.fillDefaults()
	if o.Shards > lsh.MaxShards {
		return o, fmt.Errorf("%w: Shards = %d exceeds the maximum %d", ErrInvalidOptions, o.Shards, lsh.MaxShards)
	}
	return o, nil
}

// validated rejects impossible field values but leaves zeros alone, so
// Open/OpenSharded can still tell "unset, adopt the stored value" apart
// from an explicit assertion.
func (o Options) validated() (Options, error) {
	if o.K < 0 {
		return o, fmt.Errorf("%w: K = %d is negative", ErrInvalidOptions, o.K)
	}
	if o.Tables < 0 {
		return o, fmt.Errorf("%w: Tables = %d is negative", ErrInvalidOptions, o.Tables)
	}
	if o.PublishEvery < 0 {
		return o, fmt.Errorf("%w: PublishEvery = %d is negative", ErrInvalidOptions, o.PublishEvery)
	}
	if o.Shards < 0 {
		return o, fmt.Errorf("%w: Shards = %d is negative", ErrInvalidOptions, o.Shards)
	}
	switch o.Measure {
	case CosineSimilarity, JaccardSimilarity:
	default:
		return o, fmt.Errorf("%w: unknown measure %d", ErrInvalidOptions, o.Measure)
	}
	if o.SignPanelBytes < 0 {
		return o, fmt.Errorf("%w: SignPanelBytes = %d is negative", ErrInvalidOptions, o.SignPanelBytes)
	}
	if o.CheckpointBytes < 0 {
		return o, fmt.Errorf("%w: CheckpointBytes = %d is negative", ErrInvalidOptions, o.CheckpointBytes)
	}
	if o.Float32Signing && o.Dir != "" {
		return o, fmt.Errorf("%w: Float32Signing is not supported with durable storage (Dir): the store does not persist the signing lane yet", ErrInvalidOptions)
	}
	return o, nil
}

// signConfig translates the public signing knobs into the internal batch
// engine configuration.
func (o Options) signConfig() lsh.SignConfig {
	return lsh.SignConfig{Float32: o.Float32Signing, PanelBytes: o.SignPanelBytes}
}
